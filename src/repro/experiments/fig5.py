"""Figure 5 — delay–energy tradeoff of all algorithms.

Panel (a): EEDCB vs GREED vs RAND on static channels; panel (b): FR-EEDCB
vs FR-GREED vs FR-RAND on Rayleigh fading channels.  N = 20, delay sweep
2000→6000 s.

Expected shape: EEDCB < GREED < RAND (and FR-EEDCB < FR-GREED < FR-RAND) —
the global optimizer beats the locally greedy relay choice, which beats
random relay choice.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.rng import as_generator
from .config import ExperimentConfig, FAST_CONFIG
from .fig4 import DELAYS
from .harness import (
    EvalJob,
    default_trace,
    evaluate_many,
    mean_or_nan,
    sample_instance,
    sample_paired_starts,
)
from .reporting import SweepResult, print_sweep

__all__ = ["run_fig5", "STATIC_ALGOS", "FADING_ALGOS"]

STATIC_ALGOS = ("eedcb", "greed", "rand")
FADING_ALGOS = ("fr-eedcb", "fr-greed", "fr-rand")


def run_fig5(
    channel: str = "static",
    config: ExperimentConfig = FAST_CONFIG,
    delays: Sequence[float] = DELAYS,
) -> SweepResult:
    """Reproduce Fig. 5(a) (``channel="static"``) or 5(b) (``"rayleigh"``)."""
    algos = STATIC_ALGOS if channel == "static" else FADING_ALGOS
    panel = "a" if channel == "static" else "b"
    result = SweepResult(
        title=f"Fig. 5({panel}) — normalized energy vs delay constraint, N={config.num_nodes}",
        x_label="delay (s)",
    )
    rng = as_generator(config.seed + 5)
    trace = default_trace(config.num_nodes, config, int(rng.integers(2**31 - 1)))
    # Same paired-window design as Fig. 4 (see sample_paired_starts).
    starts = sample_paired_starts(
        trace, config, rng, min(delays), max(delays), config.repetitions
    )
    # Serial sampling (the rng stream is the reproducibility contract),
    # deferred evaluation via evaluate_many (see fig4).
    jobs, points = [], []
    for delay in delays:
        for t0 in starts:
            inst = sample_instance(trace, config, rng, delay=delay, window_start=t0)
            if inst is None:
                continue
            sim_seed = int(rng.integers(2**31 - 1))
            rand_seed = int(rng.integers(2**31 - 1))
            for algo in algos:
                kwargs = {"seed": rand_seed} if "rand" in algo else {}
                jobs.append(EvalJob.make(algo, inst, sim_seed, **kwargs))
                points.append((delay, algo))
    outcomes = evaluate_many(jobs, config)

    energies: Dict[Tuple[float, str], List[float]] = {
        (d, a): [] for d in delays for a in algos
    }
    for point, out in zip(points, outcomes):
        if out is not None:
            energies[point].append(out.normalized_energy)
    for delay in delays:
        result.add_point(
            delay, {a.upper(): mean_or_nan(energies[delay, a]) for a in algos}
        )
    return result


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    for ch in ("static", "rayleigh"):
        print_sweep(run_fig5(channel=ch))

"""Figure 4 — delay–energy tradeoff of EEDCB / FR-EEDCB.

Panel (a): normalized energy vs delay constraint for EEDCB (static channel)
with N ∈ {10, 15, 20}.  Panel (b): the same for FR-EEDCB (Rayleigh fading).
The delay constraint sweeps 2000→6000 s in 500 s steps, as in the paper.

Expected shape: energy decreases monotonically (statistically) with the
delay constraint — a looser deadline lets the scheduler wait for cheaper
contacts — and increases with N.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.rng import as_generator
from .config import ExperimentConfig, FAST_CONFIG
from .harness import (
    EvalJob,
    default_trace,
    evaluate_many,
    mean_or_nan,
    sample_instance,
    sample_paired_starts,
)
from .reporting import SweepResult, print_sweep

__all__ = ["run_fig4", "DELAYS", "NODE_COUNTS"]

DELAYS = tuple(float(d) for d in range(2000, 6001, 500))
NODE_COUNTS = (10, 15, 20)


def run_fig4(
    channel: str = "static",
    config: ExperimentConfig = FAST_CONFIG,
    delays: Sequence[float] = DELAYS,
    node_counts: Sequence[int] = NODE_COUNTS,
) -> SweepResult:
    """Reproduce Fig. 4(a) (``channel="static"``) or 4(b) (``"rayleigh"``)."""
    algo = "eedcb" if channel == "static" else "fr-eedcb"
    panel = "a" if channel == "static" else "b"
    result = SweepResult(
        title=f"Fig. 4({panel}) — normalized energy vs delay constraint ({algo.upper()})",
        x_label="delay (s)",
    )
    rng = as_generator(config.seed)
    traces = {
        n: default_trace(n, config, int(rng.integers(2**31 - 1)))
        for n in node_counts
    }
    # Pair the window start across the delay sweep: each repetition samples
    # one start feasible at the tightest delay, then every delay extends the
    # same window.  This isolates the delay-constraint effect from
    # window-placement noise (the paper's curves compare like with like).
    starts = {
        n: sample_paired_starts(
            traces[n], config, rng, min(delays), max(delays), config.repetitions
        )
        for n in node_counts
    }
    # Sampling draws from the experiment's random stream, so it stays
    # serial; the (expensive) evaluations are deferred as jobs and run
    # through evaluate_many — parallel across config.workers processes,
    # bit-identical to the serial loop either way.
    jobs, points = [], []
    for delay in delays:
        for n in node_counts:
            for t0 in starts[n]:
                inst = sample_instance(
                    traces[n], config, rng, delay=delay, window_start=t0
                )
                if inst is None:
                    continue
                jobs.append(
                    EvalJob.make(algo, inst, int(rng.integers(2**31 - 1)))
                )
                points.append((delay, n))
    outcomes = evaluate_many(jobs, config)

    energies = {(d, n): [] for d in delays for n in node_counts}
    for point, out in zip(points, outcomes):
        if out is not None:
            energies[point].append(out.normalized_energy)
    for delay in delays:
        result.add_point(
            delay,
            {f"N={n}": mean_or_nan(energies[delay, n]) for n in node_counts},
        )
    return result


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    for ch in ("static", "rayleigh"):
        print_sweep(run_fig4(channel=ch))

"""RAND and FR-RAND baselines (Section VII).

RAND picks a *random* informed node (among those that could inform someone)
as the next relay at each step; FR-RAND reuses the RAND backbone and
recomputes costs with the Section VI-B NLP.  Seeded for reproducibility.
"""

from __future__ import annotations

from typing import Hashable, List

from ..allocation.nlp import solve_allocation
from ..allocation.problem import build_allocation_problem
from ..core.rng import SeedLike, as_generator
from ..errors import SolverError
from ..tveg.graph import TVEG
from .base import Scheduler, SchedulerResult, register
from .eventsim import Candidate, run_event_scheduler

__all__ = ["Rand", "FRRand"]

Node = Hashable


@register("rand")
class Rand(Scheduler):
    """The random-relay baseline."""

    def __init__(self, power_policy: str = "cover", seed: SeedLike = None):
        self._policy = power_policy
        self._rng = as_generator(seed)

    def run(
        self,
        tveg: TVEG,
        source: Node,
        deadline: float,
        start_time: float = 0.0,
    ) -> SchedulerResult:
        def select(cands: List[Candidate]) -> Candidate:
            return cands[int(self._rng.integers(len(cands)))]

        schedule, informed = run_event_scheduler(
            tveg, source, deadline, select, self._policy, start_time
        )
        return SchedulerResult(
            schedule=schedule,
            info={
                "informed": len(informed),
                "num_nodes": tveg.num_nodes,
                "power_policy": self._policy,
            },
        )


@register("fr-rand")
class FRRand(Scheduler):
    """RAND backbone + NLP energy allocation (the paper's FR-RAND)."""

    def __init__(
        self,
        power_policy: str = "cover",
        seed: SeedLike = None,
        use_slsqp: bool = True,
    ):
        self._inner = Rand(power_policy, seed)
        self._use_slsqp = use_slsqp

    def run(
        self,
        tveg: TVEG,
        source: Node,
        deadline: float,
        start_time: float = 0.0,
    ) -> SchedulerResult:
        if not tveg.is_fading:
            raise SolverError(
                "FR-RAND targets fading channels; use RAND on static ones"
            )
        base = self._inner.run(tveg, source, deadline, start_time)
        info = dict(base.info)
        if base.schedule.is_empty or base.info["informed"] < tveg.num_nodes:
            info["allocation_method"] = "backbone (partial coverage)"
            return SchedulerResult(schedule=base.schedule, info=info)
        problem = build_allocation_problem(tveg, base.schedule, source)
        alloc = solve_allocation(problem, use_slsqp=self._use_slsqp)
        info.update(
            {
                "allocation_method": alloc.method,
                "backbone_cost": base.schedule.total_cost,
                "allocated_cost": alloc.total,
            }
        )
        return SchedulerResult(
            schedule=base.schedule.with_costs(alloc.costs), info=info
        )

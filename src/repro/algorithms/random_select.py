"""RAND and FR-RAND baselines (Section VII).

RAND picks a *random* informed node (among those that could inform someone)
as the next relay at each step; FR-RAND reuses the RAND backbone and
recomputes costs with the Section VI-B NLP.  Seeded for reproducibility.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from .. import obs
from ..allocation.nlp import solve_allocation
from ..allocation.problem import build_allocation_problem
from ..core.rng import SeedLike, as_generator
from ..errors import SolverError
from ..schedule.feasibility import check_feasibility
from ..tveg.graph import TVEG
from .base import Scheduler, SchedulerResult, record_schedule, register
from .eventsim import Candidate, run_event_scheduler

__all__ = ["Rand", "FRRand"]

Node = Hashable


@register("rand")
class Rand(Scheduler):
    """The random-relay baseline."""

    def __init__(self, power_policy: str = "cover", seed: SeedLike = None,
                 compute=None):
        # compute= is accepted for a uniform scheduler surface; RAND has
        # no array-kernel stage, so every value runs the same code.
        self._policy = power_policy
        self._rng = as_generator(seed)

    def run(
        self,
        tveg: TVEG,
        source: Node,
        deadline: float,
        start_time: float = 0.0,
    ) -> SchedulerResult:
        def select(cands: List[Candidate]) -> Candidate:
            return cands[int(self._rng.integers(len(cands)))]

        stage_seconds: Dict[str, float] = {}
        with obs.span("scheduler.run", algorithm="rand"):
            with obs.stage(stage_seconds, "event_sim", "rand.event_sim"):
                schedule, informed = run_event_scheduler(
                    tveg, source, deadline, select, self._policy, start_time,
                    algorithm="rand",
                )
        record_schedule(schedule, "rand")
        return SchedulerResult(
            schedule=schedule,
            info={
                "informed": len(informed),
                "num_nodes": tveg.num_nodes,
                "power_policy": self._policy,
                "stage_seconds": stage_seconds,
            },
        )


@register("fr-rand")
class FRRand(Scheduler):
    """RAND backbone + NLP energy allocation (the paper's FR-RAND)."""

    def __init__(
        self,
        power_policy: str = "cover",
        seed: SeedLike = None,
        use_slsqp: bool = True,
        compute=None,
    ):
        self._inner = Rand(power_policy, seed)
        self._use_slsqp = use_slsqp

    def run(
        self,
        tveg: TVEG,
        source: Node,
        deadline: float,
        start_time: float = 0.0,
    ) -> SchedulerResult:
        if not tveg.is_fading:
            raise SolverError(
                "FR-RAND targets fading channels; use RAND on static ones"
            )
        base = self._inner.run(tveg, source, deadline, start_time)
        info = dict(base.info)
        if base.schedule.is_empty or base.info["informed"] < tveg.num_nodes:
            info["allocation_method"] = "backbone (partial coverage)"
            return SchedulerResult(schedule=base.schedule, info=info)
        stage_seconds: Dict[str, float] = dict(info.get("stage_seconds", {}))
        with obs.stage(stage_seconds, "allocation", "fr_rand.allocation"):
            backbone_ok = check_feasibility(
                tveg, base.schedule, source, deadline, start_time=start_time
            ).feasible
            problem = build_allocation_problem(tveg, base.schedule, source)
            alloc = solve_allocation(
                problem,
                use_slsqp=self._use_slsqp,
                fallback=base.schedule.cost_array() if backbone_ok else None,
            )
        info.update(
            {
                "allocation_method": alloc.method,
                "backbone_cost": base.schedule.total_cost,
                "allocated_cost": alloc.total,
                "nlp_iterations": alloc.nlp_iterations,
                "stage_seconds": stage_seconds,
            }
        )
        schedule = base.schedule.with_costs(alloc.costs)
        record_schedule(schedule, "fr-rand")
        return SchedulerResult(schedule=schedule, info=info)

"""Shared event-driven machinery for the GREED and RAND baselines.

Both baselines walk the topology-change event times of the trace and, at
each instant, let informed nodes transmit until no transmission would inform
anyone new; they differ only in *which* eligible relay acts next (the
selection function).  The power policy resolves the paper's Section VII
ambiguity (see DESIGN.md):

* ``"cover"`` (default) — the smallest DCS level reaching every currently
  uninformed adjacent node of the relay;
* ``"min"`` — the paper-literal smallest DCS level (``w¹``).
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..errors import SolverError
from ..schedule.schedule import Schedule, Transmission
from ..tveg.costsets import discrete_cost_set
from ..tveg.graph import TVEG

__all__ = ["Candidate", "event_times", "run_event_scheduler", "POWER_POLICIES"]

Node = Hashable
POWER_POLICIES = ("cover", "min")

#: (relay, cost, newly-informed nodes) — one possible transmission
Candidate = Tuple[Node, float, Tuple[Node, ...]]
#: picks the next transmission among candidates
Selector = Callable[[List[Candidate]], Candidate]


def event_times(tveg: TVEG, start_time: float, deadline: float) -> List[float]:
    """Topology-change instants in ``[start_time, deadline − τ]``.

    Coverage opportunities change only when some contact begins or ends (or
    when a node becomes informed — which itself happens at such an instant
    under τ = 0), so these are the only times the baselines need to act at.
    """
    end = min(deadline - tveg.tau, tveg.horizon)
    points: Set[float] = {start_time}
    for _, pres in tveg.tvg.edges_with_presence():
        for b in pres.erode(tveg.tau).boundaries_within(start_time, end):
            points.add(b)
    return sorted(points)


def _candidates(
    tveg: TVEG,
    informed: Set[Node],
    t: float,
    power_policy: str,
) -> List[Candidate]:
    out: List[Candidate] = []
    for r in informed:
        dcs = discrete_cost_set(tveg, r, t)
        if dcs.is_empty:
            continue
        uninformed = [v for v in dcs.neighbors if v not in informed]
        if not uninformed:
            continue
        if power_policy == "cover":
            w = dcs.cost_to_cover(uninformed)
        else:
            w = dcs.costs[0]
        newly = tuple(v for v in dcs.coverage(w) if v not in informed)
        if newly:
            out.append((r, w, newly))
    return out


def run_event_scheduler(
    tveg: TVEG,
    source: Node,
    deadline: float,
    select: Selector,
    power_policy: str = "cover",
    start_time: float = 0.0,
    algorithm: Optional[str] = None,
) -> Tuple[Schedule, Set[Node]]:
    """Run the event-driven baseline; returns (schedule, informed set).

    The schedule may be partial when the instance is infeasible within the
    deadline — callers decide whether that is an error (the experiment
    harness measures the resulting delivery ratio instead).  ``algorithm``
    tags each selection's ledger event with the caller's name.
    """
    if power_policy not in POWER_POLICIES:
        raise SolverError(
            f"unknown power policy {power_policy!r}; choose from {POWER_POLICIES}"
        )
    informed: Set[Node] = {source}
    rows: List[Transmission] = []
    n = tveg.num_nodes
    led = obs.get_ledger()
    recording = led.enabled

    for t in event_times(tveg, start_time, deadline):
        while len(informed) < n:
            cands = _candidates(tveg, informed, t, power_policy)
            if not cands:
                break
            relay, w, newly = select(cands)
            rows.append(Transmission(relay, t, w))
            informed.update(newly)
            if recording:
                led.emit(
                    obs.EV_RELAY_SELECTED, t=t, relay=relay, cost=w,
                    newly_informed=len(newly), candidates=len(cands),
                    algorithm=algorithm,
                )
        if len(informed) == n:
            break
    obs.counter("eventsim.selections", len(rows))
    return Schedule(rows), informed

"""FR-EEDCB — fading-resistant EEDCB (Section VI-B).

Two stages, exactly as the paper decomposes TMEDB-R:

1. **Broadcast backbone selection** — run the static-channel machinery on
   the fading TVEG; the auxiliary-graph weights are automatically the
   single-hop costs ``w0 = β / ln(1/(1−ε))`` because the DCS queries the
   fading channel's ``min_cost(ε)``.  This fixes the relay vector ``R`` and
   time vector ``T``.
2. **Optimal energy allocation** — solve the NLP of Eqs. (14)–(17) for the
   cost vector ``W`` given ``[R, T]``, accounting for the fact that under
   fading every transmission contributes probabilistically to every node it
   touches (so costs can drop below ``w0`` where coverage overlaps).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from .. import obs
from ..allocation.nlp import solve_allocation
from ..allocation.problem import build_allocation_problem
from ..errors import SolverError
from ..schedule.feasibility import check_feasibility
from ..tveg.graph import TVEG
from .base import Scheduler, SchedulerResult, record_schedule, register
from .eedcb import EEDCB

__all__ = ["FREEDCB"]

Node = Hashable


@register("fr-eedcb")
class FREEDCB(Scheduler):
    """Backbone selection via EEDCB + NLP energy allocation.

    Parameters mirror :class:`~repro.algorithms.eedcb.EEDCB`, plus
    ``use_slsqp`` to disable the SLSQP polish (coordinate descent and the
    closed form remain).
    """

    def __init__(
        self,
        memt_method: str = "greedy",
        charikar_level: int = 2,
        use_slsqp: bool = True,
        targets=None,
        backend: Optional[str] = None,
        compute: Optional[str] = None,
    ):
        self._backbone = EEDCB(
            memt_method,
            charikar_level,
            targets=targets,
            backend=backend,
            compute=compute,
        )
        self._use_slsqp = use_slsqp
        self._targets = tuple(targets) if targets is not None else None

    def run(
        self,
        tveg: TVEG,
        source: Node,
        deadline: float,
        start_time: float = 0.0,
    ) -> SchedulerResult:
        if not tveg.is_fading:
            raise SolverError(
                "FR-EEDCB targets fading channels; use EEDCB on static ones"
            )
        backbone_result = self._backbone.run(tveg, source, deadline, start_time)
        backbone = backbone_result.schedule
        info = dict(backbone_result.info)
        stage_seconds: Dict[str, float] = dict(info.get("stage_seconds", {}))
        with obs.stage(stage_seconds, "allocation", "fr_eedcb.allocation"):
            # The ε-exact backbone is a valid allocation whenever it is
            # itself feasible — in that case the margin-tightened NLP must
            # never return anything more expensive.  (Rare extraction
            # corners can yield an infeasible backbone; the NLP then has to
            # spend more than w0 to repair it, so no fallback applies.)
            backbone_ok = check_feasibility(
                tveg, backbone, source, deadline,
                start_time=start_time, targets=self._targets,
            ).feasible
            problem = build_allocation_problem(
                tveg, backbone, source, targets=self._targets
            )
            alloc = solve_allocation(
                problem,
                use_slsqp=self._use_slsqp,
                fallback=backbone.cost_array() if backbone_ok else None,
            )
        schedule = backbone.with_costs(alloc.costs)
        record_schedule(schedule, "fr-eedcb")
        info.update(
            {
                "allocation_method": alloc.method,
                "slsqp_converged": alloc.slsqp_converged,
                "backbone_feasible": backbone_ok,
                "backbone_cost": backbone.total_cost,
                "allocated_cost": alloc.total,
                "num_constraints": len(problem.constraints),
                "nlp_iterations": alloc.nlp_iterations,
                "stage_seconds": stage_seconds,
            }
        )
        return SchedulerResult(schedule=schedule, info=info)

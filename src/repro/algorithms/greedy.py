"""GREED and FR-GREED baselines (Section VII).

GREED selects, at each step, the informed node that can inform the largest
number of currently uninformed nodes, and lets it transmit immediately — a
locally optimal (set-cover-style) policy with no look-ahead across time.
FR-GREED uses the same backbone and then recomputes the cost vector with the
Section VI-B NLP, exactly as the paper describes its comparison setup.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from .. import obs
from ..allocation.nlp import solve_allocation
from ..allocation.problem import build_allocation_problem
from ..errors import SolverError
from ..schedule.feasibility import check_feasibility
from ..tveg.graph import TVEG
from .base import Scheduler, SchedulerResult, record_schedule, register
from .eventsim import Candidate, run_event_scheduler

__all__ = ["Greed", "FRGreed"]

Node = Hashable


def _greedy_select(cands: List[Candidate]) -> Candidate:
    """Most newly-informed nodes; cheapest transmission breaks ties."""
    return max(cands, key=lambda c: (len(c[2]), -c[1]))


@register("greed")
class Greed(Scheduler):
    """The greedy most-coverage baseline."""

    def __init__(self, power_policy: str = "cover", compute=None):
        # compute= is accepted for a uniform scheduler surface; GREED has
        # no array-kernel stage, so every value runs the same code.
        self._policy = power_policy

    def run(
        self,
        tveg: TVEG,
        source: Node,
        deadline: float,
        start_time: float = 0.0,
    ) -> SchedulerResult:
        stage_seconds: Dict[str, float] = {}
        with obs.span("scheduler.run", algorithm="greed"):
            with obs.stage(stage_seconds, "event_sim", "greed.event_sim"):
                schedule, informed = run_event_scheduler(
                    tveg, source, deadline, _greedy_select, self._policy,
                    start_time, algorithm="greed",
                )
        record_schedule(schedule, "greed")
        return SchedulerResult(
            schedule=schedule,
            info={
                "informed": len(informed),
                "num_nodes": tveg.num_nodes,
                "power_policy": self._policy,
                "stage_seconds": stage_seconds,
            },
        )


@register("fr-greed")
class FRGreed(Scheduler):
    """GREED backbone + NLP energy allocation (the paper's FR-GREED)."""

    def __init__(self, power_policy: str = "cover", use_slsqp: bool = True,
                 compute=None):
        self._inner = Greed(power_policy)
        self._use_slsqp = use_slsqp

    def run(
        self,
        tveg: TVEG,
        source: Node,
        deadline: float,
        start_time: float = 0.0,
    ) -> SchedulerResult:
        if not tveg.is_fading:
            raise SolverError(
                "FR-GREED targets fading channels; use GREED on static ones"
            )
        base = self._inner.run(tveg, source, deadline, start_time)
        info = dict(base.info)
        if base.schedule.is_empty or base.info["informed"] < tveg.num_nodes:
            # Partial backbone: allocation constraints would be infeasible
            # for the unreached nodes; keep w0 costs for the reached part.
            info["allocation_method"] = "backbone (partial coverage)"
            return SchedulerResult(schedule=base.schedule, info=info)
        stage_seconds: Dict[str, float] = dict(info.get("stage_seconds", {}))
        with obs.stage(stage_seconds, "allocation", "fr_greed.allocation"):
            backbone_ok = check_feasibility(
                tveg, base.schedule, source, deadline, start_time=start_time
            ).feasible
            problem = build_allocation_problem(tveg, base.schedule, source)
            alloc = solve_allocation(
                problem,
                use_slsqp=self._use_slsqp,
                fallback=base.schedule.cost_array() if backbone_ok else None,
            )
        info.update(
            {
                "allocation_method": alloc.method,
                "backbone_cost": base.schedule.total_cost,
                "allocated_cost": alloc.total,
                "nlp_iterations": alloc.nlp_iterations,
                "stage_seconds": stage_seconds,
            }
        )
        schedule = base.schedule.with_costs(alloc.costs)
        record_schedule(schedule, "fr-greed")
        return SchedulerResult(schedule=schedule, info=info)

"""Broadcast schedulers: EEDCB, FR-EEDCB, the baselines, and the oracle."""

from .base import (
    SCHEDULERS,
    Scheduler,
    SchedulerResult,
    canonical_scheduler_name,
    make_scheduler,
    register,
)
from .eedcb import EEDCB
from .eventsim import POWER_POLICIES, event_times, run_event_scheduler
from .fr_eedcb import FREEDCB
from .greedy import FRGreed, Greed
from .oracle import OracleExact
from .random_select import FRRand, Rand

__all__ = [
    "Scheduler",
    "SchedulerResult",
    "canonical_scheduler_name",
    "make_scheduler",
    "register",
    "SCHEDULERS",
    "EEDCB",
    "FREEDCB",
    "Greed",
    "FRGreed",
    "Rand",
    "FRRand",
    "OracleExact",
    "POWER_POLICIES",
    "event_times",
    "run_event_scheduler",
]

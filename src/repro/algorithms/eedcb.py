"""EEDCB — energy-efficient delay-constrained broadcast (Section VI-A).

The paper's main algorithm for static channels:

1. build the DTS of the instance over ``[start_time, deadline]``;
2. build the Section VI-A auxiliary graph (states, transmissions, DCS
   weights);
3. solve the resulting minimum-energy multicast tree problem with a directed
   Steiner approximation (Liang's reduction [3]);
4. decode the tree back into a broadcast relay schedule;
5. reduce: drop redundant transmissions (the level-merge extraction can
   strand coverage the merged level already provides) and round costs down
   to the lowest feasible DCS levels — both passes re-verify feasibility.

On a fading TVEG the DCS weights are the ``w0`` single-hop costs, so the
identical pipeline doubles as FR-EEDCB's backbone-selection stage.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from .. import obs
from ..auxgraph.build import build_aux_graph
from ..auxgraph.compact import build_compact_aux_graph
from ..auxgraph.extract import extract_schedule
from ..dts.dts import build_dts
from ..errors import InfeasibleError, SolverError
from ..schedule.reduce import lower_costs, remove_redundant, upgrade_and_prune
from ..steiner.memt import solve_memt
from ..steiner.sptree import tree_cost
from ..tveg.graph import TVEG
from .base import Scheduler, SchedulerResult, record_schedule, register

__all__ = ["EEDCB"]

Node = Hashable


@register("eedcb")
class EEDCB(Scheduler):
    """The auxiliary-graph + Steiner-tree scheduler.

    Parameters
    ----------
    memt_method:
        Steiner solver: ``"greedy"`` (default), ``"sptree"``, or
        ``"charikar"`` (small instances).
    charikar_level:
        Recursion level when ``memt_method="charikar"``.
    backend:
        Auxiliary-graph representation: ``"compact"`` (default, the CSR
        fast path) or ``"nx"`` (the networkx construction).  Both produce
        identical schedules; the switch exists for cross-checking and
        benchmarking.
    """

    def __init__(
        self,
        memt_method: str = "greedy",
        charikar_level: int = 2,
        reduce: bool = True,
        targets=None,
        backend: str = "compact",
    ):
        if backend not in ("compact", "nx"):
            raise SolverError(
                f"unknown auxgraph backend {backend!r}; "
                "choose 'compact' or 'nx'"
            )
        self._method = memt_method
        self._level = charikar_level
        self._reduce = reduce
        self._backend = backend
        #: multicast terminal subset; None = broadcast (the paper's case)
        self._targets = tuple(targets) if targets is not None else None

    def run(
        self,
        tveg: TVEG,
        source: Node,
        deadline: float,
        start_time: float = 0.0,
    ) -> SchedulerResult:
        if start_time != 0.0:
            raise InfeasibleError(
                "EEDCB assumes the broadcast starts at t=0; shift the trace "
                "window instead (ContactTrace.restrict_window().shift())"
            )
        from ..temporal.reachability import reachable_set

        stage_seconds: Dict[str, float] = {}
        steiner_stats: Dict[str, int] = {}
        with obs.span("scheduler.run", algorithm="eedcb"):
            with obs.stage(stage_seconds, "reachability", "eedcb.reachability"):
                required = (
                    self._targets if self._targets is not None else tveg.nodes
                )
                reached = reachable_set(tveg.tvg, source, start_time, deadline)
                missing = [n for n in required if n not in reached]
            if missing:
                raise InfeasibleError(
                    f"no journey reaches {missing!r} from {source!r} by {deadline:g}"
                )
            with obs.stage(stage_seconds, "dts", "eedcb.dts"):
                dts = build_dts(tveg.tvg, deadline)
            with obs.stage(stage_seconds, "auxgraph", "eedcb.auxgraph"):
                builder = (
                    build_compact_aux_graph
                    if self._backend == "compact"
                    else build_aux_graph
                )
                aux = builder(
                    tveg, source, deadline, dts, targets=self._targets
                )
                solver_graph = aux if self._backend == "compact" else aux.graph
            with obs.stage(
                stage_seconds, "steiner", "eedcb.steiner", method=self._method
            ):
                edges = solve_memt(
                    solver_graph,
                    aux.root,
                    aux.terminals,
                    method=self._method,
                    level=self._level,
                    stats=steiner_stats,
                )
            with obs.stage(stage_seconds, "extract", "eedcb.extract"):
                schedule = extract_schedule(aux, edges)
            raw_cost = schedule.total_cost
            if self._reduce:
                kw = {"targets": self._targets}
                with obs.stage(stage_seconds, "reduce", "eedcb.reduce"):
                    schedule = remove_redundant(
                        tveg, schedule, source, deadline, **kw
                    )
                    schedule = upgrade_and_prune(
                        tveg, schedule, source, deadline, **kw
                    )
                    schedule = lower_costs(tveg, schedule, source, deadline, **kw)
        record_schedule(schedule, "eedcb")
        return SchedulerResult(
            schedule=schedule,
            info={
                "aux_nodes": aux.num_nodes,
                "aux_edges": aux.num_edges,
                "dts_points": dts.total_points(),
                "dcs_levels": aux.dcs_levels,
                "steiner_expansions": steiner_stats.get("expansions", 0),
                "tree_cost": tree_cost(solver_graph, edges),
                "raw_cost": raw_cost,
                "memt_method": self._method,
                "backend": self._backend,
                "stage_seconds": stage_seconds,
            },
        )

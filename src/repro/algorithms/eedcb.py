"""EEDCB — energy-efficient delay-constrained broadcast (Section VI-A).

The paper's main algorithm for static channels:

1. build the DTS of the instance over ``[start_time, deadline]``;
2. build the Section VI-A auxiliary graph (states, transmissions, DCS
   weights);
3. solve the resulting minimum-energy multicast tree problem with a directed
   Steiner approximation (Liang's reduction [3]);
4. decode the tree back into a broadcast relay schedule;
5. reduce: drop redundant transmissions (the level-merge extraction can
   strand coverage the merged level already provides) and round costs down
   to the lowest feasible DCS levels — both passes re-verify feasibility.

On a fading TVEG the DCS weights are the ``w0`` single-hop costs, so the
identical pipeline doubles as FR-EEDCB's backbone-selection stage.

Stages 2–3 run on one of the interchangeable compute kernels selected by
``compute=`` (see :mod:`repro.compute`): the pure-stdlib path (the
bit-for-bit oracle, and the default when nothing is requested) or the
numpy array kernels.  The auxiliary graph itself is source-independent,
so built graphs are retained on the TVEG's
:meth:`~repro.tveg.graph.TVEG.aux_cache` and re-rooted per source — the
amortization behind :func:`repro.api.plan_broadcast_many`.
"""

from __future__ import annotations

import warnings
from typing import Dict, Hashable, Optional

from .. import obs
from ..auxgraph.build import build_aux_graph
from ..auxgraph.compact import build_compact_aux_graph
from ..auxgraph.extract import extract_schedule
from ..compute import canonical_compute_name, resolve_compute
from ..dts.dts import build_dts
from ..errors import InfeasibleError, SolverError
from ..schedule.reduce import lower_costs, remove_redundant, upgrade_and_prune
from ..steiner.memt import solve_memt
from ..steiner.sptree import tree_cost
from ..tveg.graph import TVEG
from .base import Scheduler, SchedulerResult, record_schedule, register

__all__ = ["EEDCB"]

Node = Hashable

#: execution mode → the representation label reported in result ``info``
_BACKEND_LABEL = {"python": "compact", "numpy": "numpy", "nx": "nx"}


def _resolve_mode(backend: Optional[str], compute) -> str:
    """Resolve the (deprecated) ``backend=`` / ``compute=`` pair to a mode.

    Returns ``"nx"``, ``"python"``, or ``"numpy"``.  ``backend=`` keeps
    working for callers that predate the compute layer, with a
    :class:`DeprecationWarning`; an explicit ``backend="compact"`` or
    ``backend="nx"`` without a compute spec pins the stdlib kernels, so
    pre-existing call sites stay byte-identical run-for-run.  So does a
    bare ``EEDCB()``: the ``"auto"`` preference for numpy is applied by
    the API/CLI layer (:func:`repro.api.plan_broadcast`), never sprung on
    direct constructor calls.
    """
    if backend is not None:
        warnings.warn(
            "the backend= parameter is deprecated; select kernels with "
            "compute='python'|'numpy'|'auto' instead (backend='nx' remains "
            "available for cross-checking the networkx construction)",
            DeprecationWarning,
            stacklevel=3,
        )
        if backend not in ("compact", "nx"):
            raise SolverError(
                f"unknown auxgraph backend {backend!r}; "
                "choose 'compact' or 'nx'"
            )
    spec = None if compute is None else canonical_compute_name(compute)
    if backend == "nx":
        if spec == "numpy":
            raise SolverError(
                "backend='nx' cannot run with compute='numpy'; the networkx "
                "construction is the stdlib parity oracle"
            )
        return "nx"
    return "python" if spec is None else resolve_compute(spec)


@register("eedcb")
class EEDCB(Scheduler):
    """The auxiliary-graph + Steiner-tree scheduler.

    Parameters
    ----------
    memt_method:
        Steiner solver: ``"greedy"`` (default), ``"sptree"``, or
        ``"charikar"`` (small instances).
    charikar_level:
        Recursion level when ``memt_method="charikar"``.
    compute:
        Kernel selection — ``"python"``, ``"numpy"``, or ``"auto"`` (see
        :mod:`repro.compute`).  ``None`` (the default) runs the stdlib
        kernels.  Every choice produces byte-identical schedules, info
        counters, and work counts; the switch is purely about speed.
    backend:
        Deprecated spelling of the same choice (``"compact"`` = stdlib
        CSR, ``"nx"`` = the networkx construction kept for
        cross-checking); superseded by ``compute=``.
    """

    def __init__(
        self,
        memt_method: str = "greedy",
        charikar_level: int = 2,
        reduce: bool = True,
        targets=None,
        backend: Optional[str] = None,
        compute: Optional[str] = None,
    ):
        self._mode = _resolve_mode(backend, compute)
        self._method = memt_method
        self._level = charikar_level
        self._reduce = reduce
        self._backend = _BACKEND_LABEL[self._mode]
        #: multicast terminal subset; None = broadcast (the paper's case)
        self._targets = tuple(targets) if targets is not None else None

    def _build_aux(self, tveg: TVEG, source: Node, deadline: float, dts):
        """Build (or fetch and re-root) the auxiliary graph for ``source``.

        The construction depends only on (TVEG, deadline, targets), so
        compact-form builds are kept on the TVEG's LRU
        :meth:`~repro.tveg.graph.TVEG.aux_cache` and re-rooted with
        :meth:`~repro.auxgraph.compact.CompactAuxGraph.retarget` — a hit
        skips the single most expensive stage of the pipeline.  The nx
        mode is exempt (it exists to exercise the construction itself).
        """
        if self._mode == "nx":
            return build_aux_graph(
                tveg, source, deadline, dts, targets=self._targets
            )
        cache = tveg.aux_cache()
        key = (self._mode, float(deadline), self._targets)
        hit = cache.get(key)
        if hit is not None:
            cache.move_to_end(key)
            if hit.source == source:
                return hit
            return hit.retarget(source, self._targets)
        if self._mode == "numpy":
            from ..compute.numpy_backend import build_numpy_aux_graph

            builder = build_numpy_aux_graph
        else:
            builder = build_compact_aux_graph
        aux = builder(tveg, source, deadline, dts, targets=self._targets)
        cache[key] = aux
        while len(cache) > TVEG.AUX_CACHE_CAPACITY:
            cache.popitem(last=False)
        return aux

    def run(
        self,
        tveg: TVEG,
        source: Node,
        deadline: float,
        start_time: float = 0.0,
    ) -> SchedulerResult:
        if start_time != 0.0:
            raise InfeasibleError(
                "EEDCB assumes the broadcast starts at t=0; shift the trace "
                "window instead (ContactTrace.restrict_window().shift())"
            )
        from ..temporal.reachability import reachable_set

        stage_seconds: Dict[str, float] = {}
        steiner_stats: Dict[str, int] = {}
        with obs.span("scheduler.run", algorithm="eedcb"):
            with obs.stage(stage_seconds, "reachability", "eedcb.reachability"):
                required = (
                    self._targets if self._targets is not None else tveg.nodes
                )
                reached = reachable_set(tveg.tvg, source, start_time, deadline)
                missing = [n for n in required if n not in reached]
            if missing:
                raise InfeasibleError(
                    f"no journey reaches {missing!r} from {source!r} by {deadline:g}"
                )
            with obs.stage(stage_seconds, "dts", "eedcb.dts"):
                dts = build_dts(tveg.tvg, deadline)
            with obs.stage(stage_seconds, "auxgraph", "eedcb.auxgraph"):
                aux = self._build_aux(tveg, source, deadline, dts)
                solver_graph = aux if self._mode != "nx" else aux.graph
            with obs.stage(
                stage_seconds, "steiner", "eedcb.steiner", method=self._method
            ):
                edges = solve_memt(
                    solver_graph,
                    aux.root,
                    aux.terminals,
                    method=self._method,
                    level=self._level,
                    stats=steiner_stats,
                    compute=self._mode if self._mode == "numpy" else None,
                )
            with obs.stage(stage_seconds, "extract", "eedcb.extract"):
                schedule = extract_schedule(aux, edges)
            raw_cost = schedule.total_cost
            if self._reduce:
                # Pin the replay kernel to the scheduler's resolved mode so
                # a compute="python" run stays numpy-free end to end.
                kw = {
                    "targets": self._targets,
                    "compute": "numpy" if self._mode == "numpy" else "python",
                }
                with obs.stage(stage_seconds, "reduce", "eedcb.reduce"):
                    schedule = remove_redundant(
                        tveg, schedule, source, deadline, **kw
                    )
                    schedule = upgrade_and_prune(
                        tveg, schedule, source, deadline, **kw
                    )
                    schedule = lower_costs(tveg, schedule, source, deadline, **kw)
        record_schedule(schedule, "eedcb")
        return SchedulerResult(
            schedule=schedule,
            info={
                "aux_nodes": aux.num_nodes,
                "aux_edges": aux.num_edges,
                "dts_points": dts.total_points(),
                "dcs_levels": aux.dcs_levels,
                "steiner_expansions": steiner_stats.get("expansions", 0),
                "tree_cost": tree_cost(solver_graph, edges),
                "raw_cost": raw_cost,
                "memt_method": self._method,
                "backend": self._backend,
                "compute": "numpy" if self._mode == "numpy" else "python",
                "stage_seconds": stage_seconds,
            },
        )

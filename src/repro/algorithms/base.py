"""Scheduler interface and registry.

Every broadcast algorithm of Section VI/VII — EEDCB, FR-EEDCB, GREED,
FR-GREED, RAND, FR-RAND — implements :class:`Scheduler`: given a TVEG, a
source, and a deadline, produce a broadcast relay schedule.  The registry
maps the paper's algorithm names to constructors so experiments can be
configured with strings.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional

from .. import obs
from ..errors import SolverError
from ..schedule.schedule import Schedule
from ..tveg.graph import TVEG

__all__ = [
    "SchedulerResult",
    "Scheduler",
    "register",
    "canonical_scheduler_name",
    "make_scheduler",
    "record_schedule",
    "SCHEDULERS",
]

Node = Hashable


@dataclass(frozen=True)
class SchedulerResult:
    """A schedule plus solver metadata (sizes, methods, fallbacks used)."""

    schedule: Schedule
    info: Dict[str, object] = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return self.schedule.total_cost


class Scheduler(ABC):
    """Base class: computes a broadcast relay schedule on a TVEG.

    **Standardized ``SchedulerResult.info`` keys.**  Schedulers report
    solver metadata under shared names so experiments and the obs exporters
    can read any algorithm's numbers uniformly:

    ``stage_seconds``
        Dict of per-stage wall times in seconds.  EEDCB-family stages:
        ``reachability``, ``dts``, ``auxgraph``, ``steiner``, ``extract``,
        ``reduce``; FR-* algorithms add ``allocation``; the event-driven
        baselines report ``event_sim``.  Recorded whether or not tracing
        is enabled.
    ``aux_nodes`` / ``aux_edges``
        Auxiliary-graph size (Section VI-A reduction).
    ``dts_points``
        Total points in the instance's discrete time set.
    ``dcs_levels``
        Total discrete-cost-set levels over every usable (node, point).
    ``steiner_expansions``
        Work counter of the Steiner solve (settled Dijkstra pops for the
        greedy solver, recursive subproblems for Charikar, 0 for sptree).
    ``nlp_iterations``
        Total SLSQP iterations of the Section VI-B allocation (FR-* only).
    ``memt_method`` / ``allocation_method`` / ``tree_cost`` / ``raw_cost``
        Method labels and pre-reduction costs, where applicable.

    Keys beyond these are algorithm-specific extras.
    """

    #: registry key and display name (the paper's algorithm acronym)
    name: str = "abstract"

    @abstractmethod
    def run(
        self,
        tveg: TVEG,
        source: Node,
        deadline: float,
        start_time: float = 0.0,
    ) -> SchedulerResult:
        """Compute a schedule for broadcasting from ``source`` by ``deadline``.

        ``deadline`` is an absolute time (the delay constraint ``T`` added to
        ``start_time`` by callers that think in durations).
        """

    def schedule(
        self,
        tveg: TVEG,
        source: Node,
        deadline: float,
        start_time: float = 0.0,
    ) -> Schedule:
        """Convenience wrapper returning just the schedule."""
        return self.run(tveg, source, deadline, start_time).schedule

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def record_schedule(schedule: Schedule, algorithm: str) -> None:
    """Emit a scheduler's final rows as ledger events (no-op when off).

    Every scheduler calls this on its result so a recorded run carries one
    :data:`~repro.obs.EV_TRANSMISSION_SCHEDULED` event per (relay, time,
    power) row, tagged with the algorithm that produced it.
    """
    led = obs.get_ledger()
    if not led.enabled:
        return
    for s in schedule:
        led.emit(
            obs.EV_TRANSMISSION_SCHEDULED, t=s.time, relay=s.relay,
            cost=s.cost, algorithm=algorithm,
        )


SCHEDULERS: Dict[str, Callable[..., Scheduler]] = {}


def register(name: str):
    """Class decorator adding a scheduler to the registry under ``name``."""

    def deco(cls):
        cls.name = name
        SCHEDULERS[name] = cls
        return cls

    return deco


def canonical_scheduler_name(name: str) -> str:
    """Resolve a scheduler name or alias to its canonical registry key.

    Accepted spellings are case-insensitive and treat hyphens, underscores,
    and spaces interchangeably — ``"fr-eedcb"``, ``"FR-EEDCB"``,
    ``"fr_eedcb"``, and the fully collapsed ``"freedcb"`` all resolve to
    ``"fr-eedcb"``.  Raises :class:`~repro.errors.SolverError` listing the
    canonical names when nothing matches.
    """
    key = str(name).strip().lower().replace("_", "-").replace(" ", "-")
    if key in SCHEDULERS:
        return key
    collapsed = key.replace("-", "")
    for canonical in SCHEDULERS:
        if canonical.replace("-", "") == collapsed:
            return canonical
    raise SolverError(
        f"unknown scheduler {name!r}; canonical names: "
        f"{', '.join(sorted(SCHEDULERS))}"
    )


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a registered scheduler by its paper acronym.

    Canonical names: ``eedcb``, ``fr-eedcb``, ``greed``, ``fr-greed``,
    ``rand``, ``fr-rand``, ``oracle``.  Aliases are normalized by
    :func:`canonical_scheduler_name` (``"FR-EEDCB"``, ``"fr_eedcb"``, and
    ``"freedcb"`` are all the same scheduler).
    """
    return SCHEDULERS[canonical_scheduler_name(name)](**kwargs)

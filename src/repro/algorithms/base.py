"""Scheduler interface and registry.

Every broadcast algorithm of Section VI/VII — EEDCB, FR-EEDCB, GREED,
FR-GREED, RAND, FR-RAND — implements :class:`Scheduler`: given a TVEG, a
source, and a deadline, produce a broadcast relay schedule.  The registry
maps the paper's algorithm names to constructors so experiments can be
configured with strings.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional

from ..errors import SolverError
from ..schedule.schedule import Schedule
from ..tveg.graph import TVEG

__all__ = ["SchedulerResult", "Scheduler", "register", "make_scheduler", "SCHEDULERS"]

Node = Hashable


@dataclass(frozen=True)
class SchedulerResult:
    """A schedule plus solver metadata (sizes, methods, fallbacks used)."""

    schedule: Schedule
    info: Dict[str, object] = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return self.schedule.total_cost


class Scheduler(ABC):
    """Base class: computes a broadcast relay schedule on a TVEG."""

    #: registry key and display name (the paper's algorithm acronym)
    name: str = "abstract"

    @abstractmethod
    def run(
        self,
        tveg: TVEG,
        source: Node,
        deadline: float,
        start_time: float = 0.0,
    ) -> SchedulerResult:
        """Compute a schedule for broadcasting from ``source`` by ``deadline``.

        ``deadline`` is an absolute time (the delay constraint ``T`` added to
        ``start_time`` by callers that think in durations).
        """

    def schedule(
        self,
        tveg: TVEG,
        source: Node,
        deadline: float,
        start_time: float = 0.0,
    ) -> Schedule:
        """Convenience wrapper returning just the schedule."""
        return self.run(tveg, source, deadline, start_time).schedule

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


SCHEDULERS: Dict[str, Callable[..., Scheduler]] = {}


def register(name: str):
    """Class decorator adding a scheduler to the registry under ``name``."""

    def deco(cls):
        cls.name = name
        SCHEDULERS[name] = cls
        return cls

    return deco


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a registered scheduler by its paper acronym.

    Known names: ``eedcb``, ``fr-eedcb``, ``greed``, ``fr-greed``, ``rand``,
    ``fr-rand`` (case-insensitive).
    """
    key = name.lower()
    if key not in SCHEDULERS:
        raise SolverError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        )
    return SCHEDULERS[key](**kwargs)

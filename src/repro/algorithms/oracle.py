"""Exhaustive optimal TMEDB-S solver for tiny instances.

Dijkstra over the joint state space ``(time-point index, informed set)``:
at each DTS time an informed node may transmit at any DCS level (cost =
that level, effect = union the covered nodes into the informed set), or time
advances for free.  With ``τ = 0`` a node informed at the current instant
may itself relay at the same instant (Eq. 6 admits ``t_j ≤ t_k``), which the
state encoding captures because transmissions at one time compose within the
same time index.

Exact for step ED-functions and τ = 0; combined with Theorem 5.2 (optimal
schedules live on the DTS) it is an exact TMEDB-S solver.  Exponential in
``N`` — the test suite uses it as ground truth for EEDCB on ≤ 6-node
instances, and the ablation bench measures approximation gaps against it.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from .. import obs
from ..dts.dts import build_dts
from ..errors import InfeasibleError, SolverError
from ..schedule.schedule import Schedule, Transmission
from ..tveg.costsets import discrete_cost_set
from ..tveg.graph import TVEG
from .base import Scheduler, SchedulerResult, record_schedule, register

__all__ = ["OracleExact"]

Node = Hashable
State = Tuple[int, FrozenSet[Node]]  # (time index, informed set)


@register("oracle")
class OracleExact(Scheduler):
    """Exact minimum-cost broadcast via state-space Dijkstra (tiny N only)."""

    def __init__(self, max_nodes: int = 8, compute=None):
        # compute= is accepted for a uniform scheduler surface; the oracle
        # has no array-kernel stage, so every value runs the same code.
        self._max_nodes = max_nodes

    def run(
        self,
        tveg: TVEG,
        source: Node,
        deadline: float,
        start_time: float = 0.0,
    ) -> SchedulerResult:
        if tveg.num_nodes > self._max_nodes:
            raise SolverError(
                f"oracle limited to {self._max_nodes} nodes "
                f"(instance has {tveg.num_nodes}); it is exponential in N"
            )
        if tveg.tau != 0.0:
            raise SolverError("oracle supports τ = 0 instances only")
        if start_time != 0.0:
            raise SolverError("oracle assumes the broadcast starts at t = 0")

        stage_seconds: Dict[str, float] = {}
        with obs.span("scheduler.run", algorithm="oracle"), obs.stage(
            stage_seconds, "search", "oracle.search"
        ):
            goal, dist, prev, dts = self._search(tveg, source, deadline)
        obs.counter("oracle.states_expanded", len(dist))

        if goal is None:
            raise InfeasibleError(
                f"no schedule informs all nodes from {source!r} by {deadline:g}"
            )

        rows: List[Transmission] = []
        state = goal
        while state in prev:
            state, tx = prev[state]
            if tx is not None:
                rows.append(tx)
        rows.reverse()
        schedule = Schedule(rows)
        record_schedule(schedule, "oracle")
        return SchedulerResult(
            schedule=schedule,
            info={
                "optimal_cost": dist[goal],
                "states_expanded": len(dist),
                "dts_points": dts.total_points(),
                "stage_seconds": stage_seconds,
            },
        )

    def _search(self, tveg: TVEG, source: Node, deadline: float):
        """Dijkstra over (time index, informed set); returns search state."""
        # Global candidate transmission times: union of all DTS points.
        dts = build_dts(tveg.tvg, deadline)
        times = sorted({t for n in tveg.nodes for t in dts.points(n)})
        all_nodes = frozenset(tveg.nodes)

        start: State = (0, frozenset([source]))
        dist: Dict[State, float] = {start: 0.0}
        prev: Dict[State, Tuple[State, Optional[Transmission]]] = {}
        heap: List[Tuple[float, int, State]] = [(0.0, 0, start)]
        counter = 1
        goal: Optional[State] = None

        while heap:
            cost, _, state = heapq.heappop(heap)
            if cost > dist.get(state, math.inf):
                continue
            t_idx, informed = state
            if informed == all_nodes:
                goal = state
                break
            # Advance time for free.
            if t_idx + 1 < len(times):
                nxt: State = (t_idx + 1, informed)
                if cost < dist.get(nxt, math.inf):
                    dist[nxt] = cost
                    prev[nxt] = (state, None)
                    heapq.heappush(heap, (cost, counter, nxt))
                    counter += 1
            # Transmit from any informed node at any DCS level.
            t = times[t_idx]
            for relay in informed:
                dcs = discrete_cost_set(tveg, relay, t)
                for k, (w, _) in enumerate(dcs.entries):
                    covered = dcs.coverage(w)
                    new_informed = informed | set(covered)
                    if new_informed == informed:
                        continue
                    nxt = (t_idx, frozenset(new_informed))
                    new_cost = cost + w
                    if new_cost < dist.get(nxt, math.inf):
                        dist[nxt] = new_cost
                        prev[nxt] = (state, Transmission(relay, t, w))
                        heapq.heappush(heap, (new_cost, counter, nxt))
                        counter += 1

        return goal, dist, prev, dts

"""One-call TVEG construction from traces and mobility models."""

from __future__ import annotations

from typing import Optional, Union

from ..channels.models import (
    ChannelModel,
    NakagamiChannel,
    RayleighChannel,
    RicianChannel,
    StaticChannel,
)
from ..core.rng import SeedLike
from ..errors import GraphModelError
from ..params import PAPER_PARAMS, PhyParams
from ..traces.enrich import DistanceModel
from .graph import TVEG

__all__ = ["tveg_from_trace", "make_channel"]

_CHANNELS = {
    "static": StaticChannel,
    "rayleigh": RayleighChannel,
    "rician": RicianChannel,
    "nakagami": NakagamiChannel,
}


def make_channel(
    channel: Union[str, ChannelModel],
    params: PhyParams = PAPER_PARAMS,
) -> ChannelModel:
    """Resolve a channel spec (name or instance) to a :class:`ChannelModel`."""
    if isinstance(channel, ChannelModel):
        return channel
    try:
        cls = _CHANNELS[channel]
    except KeyError:
        raise GraphModelError(
            f"unknown channel {channel!r}; choose from {sorted(_CHANNELS)}"
        ) from None
    return cls(params)


def tveg_from_trace(
    trace,
    channel: Union[str, ChannelModel] = "static",
    params: PhyParams = PAPER_PARAMS,
    distance_model: Optional[DistanceModel] = None,
    tau: float = 0.0,
    seed: SeedLike = None,
    dcs_capacity: Optional[int] = None,
) -> TVEG:
    """Build a TVEG from a contact trace in one call.

    This is the standard experiment pipeline: trace → TVG (topology),
    :class:`~repro.traces.enrich.DistanceModel` → distances, channel model →
    ED-functions.  The same ``seed`` always yields the same distances, so
    static and fading runs over one trace see identical geometry — the
    paper's Figs. 5/6 comparisons rely on this.

    ``trace`` is either trace backend — a dict-backed
    :class:`~repro.traces.model.ContactTrace` or a columnar
    :class:`~repro.traces.store.ContactStore`; both expose the
    ``to_tvg`` / ``pair_presence`` surface this pipeline consumes and
    produce byte-identical TVEGs (same node order, same presence sets,
    same synthesized distances).  ``dcs_capacity`` bounds the TVEG's
    discrete-cost-set memo (see :class:`~repro.tveg.graph.TVEG`); leave
    ``None`` for the unbounded default.
    """
    tvg = trace.to_tvg(tau=tau)
    dm = distance_model or DistanceModel()
    provider = dm.attach(trace, seed=seed)
    return TVEG(
        tvg, make_channel(channel, params), provider,
        dcs_capacity=dcs_capacity,
    )

"""One-call TVEG construction from traces and mobility models."""

from __future__ import annotations

from typing import Optional, Union

from ..channels.models import (
    ChannelModel,
    NakagamiChannel,
    RayleighChannel,
    RicianChannel,
    StaticChannel,
)
from ..core.rng import SeedLike
from ..errors import GraphModelError
from ..params import PAPER_PARAMS, PhyParams
from ..traces.enrich import DistanceModel
from ..traces.model import ContactTrace
from .graph import TVEG

__all__ = ["tveg_from_trace", "make_channel"]

_CHANNELS = {
    "static": StaticChannel,
    "rayleigh": RayleighChannel,
    "rician": RicianChannel,
    "nakagami": NakagamiChannel,
}


def make_channel(
    channel: Union[str, ChannelModel],
    params: PhyParams = PAPER_PARAMS,
) -> ChannelModel:
    """Resolve a channel spec (name or instance) to a :class:`ChannelModel`."""
    if isinstance(channel, ChannelModel):
        return channel
    try:
        cls = _CHANNELS[channel]
    except KeyError:
        raise GraphModelError(
            f"unknown channel {channel!r}; choose from {sorted(_CHANNELS)}"
        ) from None
    return cls(params)


def tveg_from_trace(
    trace: ContactTrace,
    channel: Union[str, ChannelModel] = "static",
    params: PhyParams = PAPER_PARAMS,
    distance_model: Optional[DistanceModel] = None,
    tau: float = 0.0,
    seed: SeedLike = None,
) -> TVEG:
    """Build a TVEG from a contact trace in one call.

    This is the standard experiment pipeline: trace → TVG (topology),
    :class:`~repro.traces.enrich.DistanceModel` → distances, channel model →
    ED-functions.  The same ``seed`` always yields the same distances, so
    static and fading runs over one trace see identical geometry — the
    paper's Figs. 5/6 comparisons rely on this.
    """
    tvg = trace.to_tvg(tau=tau)
    dm = distance_model or DistanceModel()
    provider = dm.attach(trace, seed=seed)
    return TVEG(tvg, make_channel(channel, params), provider)

"""Time-varying energy-demand graphs (Definition 3.2).

A TVEG extends a TVG by embedding an ED-function on every edge at every
time: ``G_F = (V, E, T, F, ρ, ζ, ψ)``.  Concretely the cost function ``ψ`` is
realized by composing a :class:`~repro.channels.models.ChannelModel` (which
turns a link distance into an ED-function) with a *distance provider* (which
answers ``d_{i,j,t}`` for any time inside a contact).  Querying an edge that
is not adjacent at ``t`` yields :class:`~repro.channels.base.AbsentED`
(Property 3.1(iii)).
"""

from __future__ import annotations

import hashlib
import math
from collections import OrderedDict
from typing import Callable, Hashable, List, Optional, Tuple

from ..channels.base import AbsentED, EDFunction
from ..channels.models import ChannelModel
from ..errors import GraphModelError
from ..params import PhyParams
from ..temporal.tvg import TVG, edge_key

__all__ = ["TVEG", "DistanceProvider"]

Node = Hashable
#: Anything answering ``distance(u, v, t) -> float`` for in-contact queries.
DistanceProvider = Callable[[Node, Node, float], float]


class _BoundedDCSMemo(OrderedDict):
    """A DCS memo with an entry cap: least-recently-hit cost sets evict.

    Serves the exact plain-``dict`` interface :mod:`repro.tveg.costsets`
    drives (``get`` / item assignment / ``clear``), so it can replace the
    unbounded memo transparently.  Eviction is parity-safe by construction:
    the memo is pure memoization, so a dropped entry is simply recomputed —
    same floats, same ordering — on the next query.  This is what keeps
    full-trace planning on million-contact stores from pinning one
    ``DiscreteCostSet`` per (node, time-point) in memory for the whole run.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__()
        if capacity < 1:
            raise GraphModelError("dcs_capacity must be a positive integer")
        self.capacity = int(capacity)

    def get(self, key, default=None):
        found = super().get(key, default)
        if found is not default:
            self.move_to_end(key)
        return found

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        if len(self) > self.capacity:
            self.popitem(last=False)


class TVEG:
    """A TVG whose edges carry energy-demand functions.

    Parameters
    ----------
    tvg:
        The underlying time-varying graph (topology over time).
    channel:
        The channel model providing ``ψ``: distance → ED-function.
    distances:
        A distance provider; must answer for every (pair, time) at which the
        pair is in contact.  See :class:`~repro.traces.enrich.DistanceModel`
        and :mod:`repro.mobility` for the two standard sources.
    dcs_capacity:
        Optional cap on retained :class:`DiscreteCostSet` memo entries.
        ``None`` (the default) memoizes every ``(node, t)`` cost set for
        the TVG version's lifetime; a positive integer bounds the memo
        with LRU eviction instead — identical results (evicted entries are
        recomputed bit-for-bit on demand), bounded memory.  The scale
        pipeline sets this when planning on million-contact stores.
    """

    def __init__(
        self,
        tvg: TVG,
        channel: ChannelModel,
        distances: DistanceProvider,
        dcs_capacity: Optional[int] = None,
    ) -> None:
        self._tvg = tvg
        self._channel = channel
        self._distances = distances
        # Per-contact cost cache: valid only when the provider certifies the
        # distance constant across each contact (the default trace pipeline);
        # keyed by (edge, presence-interval start).
        self._cost_cacheable = bool(
            getattr(distances, "constant_within_contacts", False)
        )
        self._cost_cache: dict = {}
        # DCS memo: (node, t) → DiscreteCostSet, valid for one TVG version.
        # Populated by repro.tveg.costsets (single queries and batch sweeps)
        # so the backbone stage, extraction, and reduction passes share one
        # computation per (node, point).
        self._dcs_memo: dict = (
            {} if dcs_capacity is None else _BoundedDCSMemo(dcs_capacity)
        )
        self._dcs_memo_version = tvg.version
        # Derived-array memo for the numpy compute backend (per-node contact
        # component arrays etc.), same version discipline as the DCS memo.
        self._compute_cache: dict = {}
        self._compute_cache_version = tvg.version
        # Auxiliary-graph cache: (mode, deadline, targets) → CompactAuxGraph.
        # The Section VI-A construction is source-independent, so one build
        # serves every source via CompactAuxGraph.retarget; bounded LRU.
        self._aux_cache: "OrderedDict" = OrderedDict()
        self._aux_cache_version = tvg.version
        # Replay memo: neighbor tuples and failure probabilities looked up
        # by the feasibility checker's causal replay.  The reduce passes
        # replay near-identical schedules once per candidate, so these
        # pure-function evaluations recur massively.
        self._replay_cache: dict = {}
        self._replay_cache_version = tvg.version

    # ------------------------------------------------------------------
    # passthrough topology accessors
    # ------------------------------------------------------------------
    @property
    def tvg(self) -> TVG:
        return self._tvg

    @property
    def channel(self) -> ChannelModel:
        return self._channel

    @property
    def params(self) -> PhyParams:
        return self._channel.params

    @property
    def nodes(self) -> Tuple[Node, ...]:
        return self._tvg.nodes

    @property
    def num_nodes(self) -> int:
        return self._tvg.num_nodes

    @property
    def horizon(self) -> float:
        return self._tvg.horizon

    @property
    def tau(self) -> float:
        return self._tvg.tau

    @property
    def is_fading(self) -> bool:
        return self._channel.is_fading

    def adjacent(self, u: Node, v: Node, t: float) -> bool:
        """The paper's adjacency predicate ``ρ_τ(e_{u,v}, t) = 1``."""
        return self._tvg.rho_tau(u, v, t)

    def neighbors(self, node: Node, t: float) -> Tuple[Node, ...]:
        return self._tvg.neighbors(node, t)

    # ------------------------------------------------------------------
    # energy-demand queries (ψ of Definition 3.2)
    # ------------------------------------------------------------------
    def distance(self, u: Node, v: Node, t: float) -> float:
        """Link distance ``d_{u,v,t}``; only defined while in contact."""
        return self._distances(u, v, t)

    def ed(self, u: Node, v: Node, t: float) -> EDFunction:
        """The ED-function ``φ_t^{e_{u,v}}`` (AbsentED when not adjacent)."""
        if not self.adjacent(u, v, t):
            return AbsentED()
        return self._channel.ed_from_distance(self.distance(u, v, t))

    def failure(self, u: Node, v: Node, t: float, w: float) -> float:
        """``φ_t^{e_{u,v}}(w)`` — single-transmission failure probability."""
        return self.ed(u, v, t).failure(w)

    def _backbone_weight_at(self, u: Node, v: Node, t: float) -> float:
        """Backbone cost of an adjacent link, with per-contact caching."""
        if not self._cost_cacheable:
            return self._channel.backbone_weight(self.distance(u, v, t))
        key = edge_key(u, v)
        start = self._tvg.presence(u, v).interval_at(t).start
        cached = self._cost_cache.get((key, start))
        if cached is None:
            cached = self._channel.backbone_weight(self.distance(u, v, t))
            self._cost_cache[(key, start)] = cached
        return cached

    def min_cost(self, u: Node, v: Node, t: float) -> float:
        """The link's backbone cost at ``t`` (Section VI), ``inf`` if absent.

        For static channels this is Eq. (2)'s minimum cost
        ``N0·B·γ_th / h``; for fading channels it is ``w0``, the cost that
        pins single-hop failure at the acceptable error rate ε.
        """
        if not self.adjacent(u, v, t):
            return math.inf
        return self._backbone_weight_at(u, v, t)

    def dcs_memo(self) -> dict:
        """The live ``(node, t) → DiscreteCostSet`` memo (version-checked).

        Accessing the memo after the underlying TVG mutated clears it, so
        stale cost sets are never served.  The cost cache is dropped with it
        (its contact keys may no longer exist).
        """
        if self._dcs_memo_version != self._tvg.version:
            self._dcs_memo.clear()
            self._cost_cache.clear()
            self._dcs_memo_version = self._tvg.version
        return self._dcs_memo

    def compute_cache(self) -> dict:
        """The numpy backend's derived-array memo (version-checked).

        Holds per-node contact-component arrays and similar pure
        derivations of the current topology; dropped automatically when
        the underlying TVG mutates, like :meth:`dcs_memo`.
        """
        if self._compute_cache_version != self._tvg.version:
            self._compute_cache.clear()
            self._compute_cache_version = self._tvg.version
        return self._compute_cache

    def replay_cache(self) -> dict:
        """Memo for the feasibility replay's pure lookups (version-checked).

        Holds ``("nbr", node, t) → neighbor tuple`` and
        ``("fail", u, v, t, w) → probability`` entries — both deterministic
        functions of the current topology, so caching them only skips
        recomputation (the cached float is the one the first evaluation
        produced).  Dropped automatically when the underlying TVG mutates.
        """
        if self._replay_cache_version != self._tvg.version:
            self._replay_cache.clear()
            self._replay_cache_version = self._tvg.version
        return self._replay_cache

    #: retained auxiliary-graph builds per TVEG (one per (mode, deadline,
    #: targets) triple); small because each graph can be large
    AUX_CACHE_CAPACITY = 4

    def aux_cache(self) -> "OrderedDict":
        """Bounded LRU of auxiliary-graph builds (version-checked).

        Keyed by ``(mode, deadline, targets)`` — *not* the source, because
        the construction is source-independent and consumers re-root via
        :meth:`~repro.auxgraph.compact.CompactAuxGraph.retarget`.  Like
        every other TVEG cache this is pure memoization: entries never
        change results, only skip rebuilds (the batch-planning and
        service amortization).
        """
        if self._aux_cache_version != self._tvg.version:
            self._aux_cache.clear()
            self._aux_cache_version = self._tvg.version
        return self._aux_cache

    @property
    def cost_cacheable(self) -> bool:
        """True when link costs are constant within each contact, so
        per-contact caching (and DCS reuse across event-free gaps) is
        sound."""
        return self._cost_cacheable

    def clear_caches(self) -> None:
        """Drop every layer of memoized state derived from the topology.

        Covers the DCS memo, the per-contact cost cache, the compute
        backend's derived arrays, retained auxiliary-graph builds, and —
        via :meth:`~repro.temporal.tvg.TVG.clear_event_cache` — the
        underlying TVG's per-node adjacency-event lists that feed the
        timeline sweeps.  Results are unaffected (the caches are pure
        memoization); used by the benchmark suite to time cold builds,
        which is why the sweep cursors' event lists must go too.
        """
        self._dcs_memo.clear()
        self._cost_cache.clear()
        self._compute_cache.clear()
        self._aux_cache.clear()
        self._replay_cache.clear()
        self._tvg.clear_event_cache()

    def contact_cost(self, node: Node, other: Node, t: float,
                     contact_start: float) -> float:
        """Backbone cost of a link known (by the sweep) to be in contact.

        Shares :attr:`_cost_cache` with the point-query path — keyed by the
        same ``(edge, presence-interval start)`` — so sweep-computed and
        point-computed costs are the same float objects bit-for-bit.
        """
        if not self._cost_cacheable:
            return self._channel.backbone_weight(self.distance(node, other, t))
        key = (edge_key(node, other), contact_start)
        cached = self._cost_cache.get(key)
        if cached is None:
            cached = self._channel.backbone_weight(
                self.distance(node, other, t)
            )
            self._cost_cache[key] = cached
        return cached

    def fingerprint(self) -> str:
        """Short content hash of the *realized* energy-demand graph.

        Covers the topology (every contact interval), the channel model
        class, the physical-layer parameters, ``τ``, and the link geometry
        (each contact's distance sampled at its interval start — the value
        the constant-within-contact cost cache keys on).  Two TVEGs built
        from the same trace with the same channel/params/seed hash
        identically; changing any of those changes the hash.  Memoized per
        TVG version, so repeated cache lookups cost one dict read.
        """
        version = self._tvg.version
        memo = getattr(self, "_fingerprint", None)
        if memo is not None and memo[0] == version:
            return memo[1]
        h = hashlib.sha256()
        h.update(
            repr(
                (
                    type(self._channel).__name__,
                    self._channel.params,
                    self._tvg.nodes,
                    self._tvg.horizon,
                    self._tvg.tau,
                )
            ).encode("utf-8")
        )
        for u, v, start, end in self._tvg.contacts():
            d = self._distances(u, v, start)
            h.update(repr((u, v, start, end, d)).encode("utf-8"))
        fp = h.hexdigest()[:16]
        self._fingerprint = (version, fp)
        return fp

    def neighbor_costs(self, node: Node, t: float) -> List[Tuple[Node, float]]:
        """``(neighbor, backbone cost)`` for all nodes adjacent at ``t``,
        sorted ascending by cost — the raw material of the DCS."""
        out = [
            (v, self._backbone_weight_at(node, v, t))
            for v in self.neighbors(node, t)
        ]
        out.sort(key=lambda item: (item[1], repr(item[0])))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TVEG({self._tvg!r}, channel={self._channel!r})"

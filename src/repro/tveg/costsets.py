"""Discrete cost sets (Section VI-A).

At a time ``t`` a node ``v_i`` with ``m`` adjacent nodes has minimum costs
``w¹ ≤ w² ≤ ... ≤ w^m`` to them; Proposition 6.1 shows an optimal schedule
only ever transmits at one of these values, so the continuous cost set
collapses to the *discrete cost set* ``W^di_{i,t} = {w¹, ..., w^m}``.
Property 6.1(i) — the broadcast nature — says transmitting at ``w^k``
informs every neighbor whose minimum cost is ≤ ``w^k``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence, Tuple

from .. import obs
from ..errors import ScheduleError
from .graph import TVEG

__all__ = ["DiscreteCostSet", "discrete_cost_set"]

Node = Hashable


@dataclass(frozen=True)
class DiscreteCostSet:
    """The DCS of one node at one time: per-neighbor minimum costs.

    ``entries`` are ``(cost, neighbor)`` sorted ascending by cost.
    """

    node: Node
    time: float
    entries: Tuple[Tuple[float, Node], ...]

    @property
    def is_empty(self) -> bool:
        return not self.entries

    @property
    def costs(self) -> Tuple[float, ...]:
        """The discrete cost levels ``w¹ ≤ ... ≤ w^m``."""
        return tuple(c for c, _ in self.entries)

    @property
    def neighbors(self) -> Tuple[Node, ...]:
        return tuple(n for _, n in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    def coverage(self, w: float) -> Tuple[Node, ...]:
        """Neighbors informed by transmitting at cost ``w`` (Property 6.1(i))."""
        return tuple(n for c, n in self.entries if c <= w)

    def round_down(self, w: float) -> float:
        """The largest DCS level ≤ ``w`` (Property 6.1(ii)'s rounding).

        Raises :class:`ScheduleError` if ``w`` is below every level (the
        transmission would inform nobody).
        """
        best = None
        for c, _ in self.entries:
            if c <= w:
                best = c
            else:
                break
        if best is None:
            raise ScheduleError(
                f"cost {w!r} is below the smallest DCS level of node "
                f"{self.node!r} at t={self.time!r}"
            )
        return best

    def cost_to_cover(self, targets: Iterable[Node]) -> float:
        """Smallest DCS level informing all ``targets``; ``inf`` if any
        target is not adjacent at this time."""
        targets = set(targets)
        if not targets:
            return 0.0
        need = -math.inf
        seen = set()
        for c, n in self.entries:
            if n in targets:
                need = max(need, c)
                seen.add(n)
        if seen != targets:
            return math.inf
        return need

    def level_index(self, w: float) -> int:
        """Index ``k`` (0-based) of an exact DCS level ``w``."""
        for k, (c, _) in enumerate(self.entries):
            if c == w:
                return k
        raise ScheduleError(f"{w!r} is not a DCS level of node {self.node!r}")


def discrete_cost_set(tveg: TVEG, node: Node, t: float) -> DiscreteCostSet:
    """Compute the DCS of ``node`` at time ``t`` from the TVEG.

    Neighbors whose backbone cost is infinite (should not happen for
    adjacent links) are dropped defensively.
    """
    entries = tuple(
        (c, v) for v, c in tveg.neighbor_costs(node, t) if math.isfinite(c)
    )
    obs.counter("tveg.dcs_built")
    obs.counter("tveg.dcs_levels", len(entries))
    return DiscreteCostSet(node=node, time=t, entries=entries)

"""Discrete cost sets (Section VI-A).

At a time ``t`` a node ``v_i`` with ``m`` adjacent nodes has minimum costs
``w¹ ≤ w² ≤ ... ≤ w^m``; Proposition 6.1 shows an optimal schedule
only ever transmits at one of these values, so the continuous cost set
collapses to the *discrete cost set* ``W^di_{i,t} = {w¹, ..., w^m}``.
Property 6.1(i) — the broadcast nature — says transmitting at ``w^k``
informs every neighbor whose minimum cost is ≤ ``w^k``.

Two query paths produce identical cost sets:

* :func:`discrete_cost_set` — one (node, time) pair, via the TVEG's
  point queries;
* :func:`discrete_cost_sets` — one node at *many ascending* times, via a
  single forward sweep over the node's contact boundaries
  (:mod:`repro.temporal.sweep`) — the fast path the auxiliary-graph
  builders use.

Both share the TVEG's per-contact cost cache and memoize results on the
TVEG (``(node, t)`` keyed), so the backbone stage, schedule extraction,
and the reduction passes never recompute a DCS.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Hashable, Iterable, List, Sequence, Tuple

from .. import obs
from ..errors import ScheduleError
from .graph import TVEG

__all__ = ["DiscreteCostSet", "discrete_cost_set", "discrete_cost_sets"]

Node = Hashable


@dataclass(frozen=True)
class DiscreteCostSet:
    """The DCS of one node at one time: per-neighbor minimum costs.

    ``entries`` are ``(cost, neighbor)`` sorted ascending by cost.
    """

    node: Node
    time: float
    entries: Tuple[Tuple[float, Node], ...]

    @property
    def is_empty(self) -> bool:
        return not self.entries

    @property
    def costs(self) -> Tuple[float, ...]:
        """The discrete cost levels ``w¹ ≤ ... ≤ w^m``.

        Memoized per instance: :meth:`round_down` / :meth:`level_index`
        bisect this tuple on every schedule-extraction and reduction query,
        and an aux-graph build asks thousands of times per node.
        """
        cached = self.__dict__.get("_costs")
        if cached is None:
            cached = tuple(c for c, _ in self.entries)
            object.__setattr__(self, "_costs", cached)
        return cached

    @property
    def neighbors(self) -> Tuple[Node, ...]:
        return tuple(n for _, n in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    def coverage(self, w: float) -> Tuple[Node, ...]:
        """Neighbors informed by transmitting at cost ``w`` (Property 6.1(i))."""
        return tuple(n for c, n in self.entries if c <= w)

    def round_down(self, w: float) -> float:
        """The largest DCS level ≤ ``w`` (Property 6.1(ii)'s rounding).

        Raises :class:`ScheduleError` if ``w`` is below every level (the
        transmission would inform nobody).
        """
        i = bisect_right(self.costs, w)
        if i == 0:
            raise ScheduleError(
                f"cost {w!r} is below the smallest DCS level of node "
                f"{self.node!r} at t={self.time!r}"
            )
        return self.entries[i - 1][0]

    def cost_to_cover(self, targets: Iterable[Node]) -> float:
        """Smallest DCS level informing all ``targets``; ``inf`` if any
        target is not adjacent at this time."""
        targets = set(targets)
        if not targets:
            return 0.0
        need = -math.inf
        seen = set()
        for c, n in self.entries:
            if n in targets:
                need = max(need, c)
                seen.add(n)
        if seen != targets:
            return math.inf
        return need

    def level_index(self, w: float) -> int:
        """Index ``k`` (0-based) of an exact DCS level ``w``."""
        costs = self.costs
        k = bisect_left(costs, w)
        if k < len(costs) and costs[k] == w:
            return k
        raise ScheduleError(f"{w!r} is not a DCS level of node {self.node!r}")


def _sorted_entries(
    raw: List[Tuple[float, Node]]
) -> Tuple[Tuple[float, Node], ...]:
    """Finite ``(cost, neighbor)`` pairs in the canonical DCS order."""
    raw.sort(key=lambda item: (item[0], repr(item[1])))
    return tuple((c, v) for c, v in raw if math.isfinite(c))


def discrete_cost_set(tveg: TVEG, node: Node, t: float) -> DiscreteCostSet:
    """Compute (or recall) the DCS of ``node`` at time ``t``.

    Results are memoized on the TVEG keyed by the exact ``(node, t)`` pair;
    repeated queries — schedule extraction, the reduction passes, the
    FR-EEDCB backbone stage — hit the memo.  Neighbors whose backbone cost
    is infinite (should not happen for adjacent links) are dropped
    defensively.
    """
    memo = tveg.dcs_memo()
    key = (node, t)
    cached = memo.get(key)
    if cached is not None:
        obs.counter("tveg.dcs_memo_hits")
        return cached
    entries = _sorted_entries(
        [(c, v) for v, c in tveg.neighbor_costs(node, t)]
    )
    obs.counter("tveg.dcs_built")
    obs.counter("tveg.dcs_levels", len(entries))
    dcs = DiscreteCostSet(node=node, time=t, entries=entries)
    memo[key] = dcs
    return dcs


def discrete_cost_sets(
    tveg: TVEG, node: Node, times: Sequence[float]
) -> List[DiscreteCostSet]:
    """The DCS of ``node`` at every time in ascending ``times``.

    One forward sweep over the node's contact boundaries answers all the
    queries — ``O(points + events)`` instead of ``O(points × incident
    edges)`` repeated interval scans.  Produces exactly the cost sets
    :func:`discrete_cost_set` would (same costs, same ordering; the
    per-contact cost cache is shared), and populates the same memo.
    """
    memo = tveg.dcs_memo()
    out: List[DiscreteCostSet] = []
    sweep = None
    built = levels = 0
    # When link costs are constant within contacts, the entries only change
    # when the active set does — i.e. when the sweep applies an event.  Two
    # consecutive computed points with no event between them share one
    # entries tuple verbatim, skipping the cost lookups and the sort.
    reusable = tveg.cost_cacheable
    last_pos = -1
    last_entries: Tuple[Tuple[float, Node], ...] = ()
    for t in times:
        key = (node, t)
        cached = memo.get(key)
        if cached is not None:
            # The sweep (if any) simply skips this time; advance() applies
            # all intervening events at the next miss.
            obs.counter("tveg.dcs_memo_hits")
            out.append(cached)
            continue
        if sweep is None:
            sweep = tveg.tvg.sweep(node)
        active = sweep.advance(t)
        if reusable and sweep.position == last_pos:
            entries = last_entries
        else:
            entries = _sorted_entries(
                [
                    (tveg.contact_cost(node, other, t, start), other)
                    for other, start in active.items()
                ]
            )
            last_pos, last_entries = sweep.position, entries
        dcs = DiscreteCostSet(node=node, time=t, entries=entries)
        memo[key] = dcs
        out.append(dcs)
        built += 1
        levels += len(entries)
    if sweep is not None:
        sweep.finish()
    if built:
        obs.counter("tveg.dcs_built", built)
        obs.counter("tveg.dcs_levels", levels)
    return out

"""Time-varying energy-demand graphs (Definition 3.2) and cost sets."""

from .builders import make_channel, tveg_from_trace
from .costsets import DiscreteCostSet, discrete_cost_set
from .graph import TVEG, DistanceProvider

__all__ = [
    "TVEG",
    "DistanceProvider",
    "DiscreteCostSet",
    "discrete_cost_set",
    "tveg_from_trace",
    "make_channel",
]

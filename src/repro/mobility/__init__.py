"""Mobility models: random waypoint and position-trace utilities."""

from .positions import PositionTrace
from .random_waypoint import RandomWaypoint

__all__ = ["PositionTrace", "RandomWaypoint"]

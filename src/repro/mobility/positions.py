"""Position traces: sampled node trajectories with distance/contact queries.

A :class:`PositionTrace` holds positions of all nodes on a uniform time
grid.  It answers interpolated distances (feeding the TVEG's ED-functions
directly, with genuinely time-varying ``d_{i,j,t}``) and extracts a contact
trace by thresholding pairwise distance at the radio range — the end-to-end
mobility pipeline: positions → contacts → TVEG.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Tuple

import numpy as np

from ..errors import GraphModelError
from ..traces.model import Contact, ContactTrace

__all__ = ["PositionTrace"]

Node = Hashable


class PositionTrace:
    """Positions of ``N`` nodes sampled at uniform times.

    Parameters
    ----------
    times:
        1-D array of strictly increasing sample times starting at 0.
    positions:
        Array of shape ``(len(times), N, 2)``.
    nodes:
        Node identifiers, length ``N`` (defaults to ``range(N)``).
    """

    def __init__(
        self,
        times: np.ndarray,
        positions: np.ndarray,
        nodes: Sequence[Node] = None,
    ) -> None:
        times = np.asarray(times, dtype=float)
        positions = np.asarray(positions, dtype=float)
        if times.ndim != 1 or len(times) < 2:
            raise GraphModelError("need at least two time samples")
        if np.any(np.diff(times) <= 0):
            raise GraphModelError("sample times must be strictly increasing")
        if positions.shape[0] != len(times) or positions.ndim != 3 or positions.shape[2] != 2:
            raise GraphModelError(
                f"positions must have shape (T, N, 2); got {positions.shape}"
            )
        self._times = times
        self._pos = positions
        n = positions.shape[1]
        self._nodes = tuple(nodes) if nodes is not None else tuple(range(n))
        if len(self._nodes) != n:
            raise GraphModelError("nodes length must match positions' N axis")
        self._index = {node: i for i, node in enumerate(self._nodes)}

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Node, ...]:
        return self._nodes

    @property
    def times(self) -> np.ndarray:
        return self._times

    @property
    def horizon(self) -> float:
        return float(self._times[-1])

    def position(self, node: Node, t: float) -> np.ndarray:
        """Linearly interpolated position of ``node`` at time ``t``."""
        i = self._index[node]
        x = np.interp(t, self._times, self._pos[:, i, 0])
        y = np.interp(t, self._times, self._pos[:, i, 1])
        return np.array([x, y])

    def distance(self, u: Node, v: Node, t: float) -> float:
        """Interpolated pairwise distance ``d_{u,v,t}``."""
        d = self.position(u, t) - self.position(v, t)
        return float(np.hypot(d[0], d[1]))

    def distance_provider(self, min_distance: float = 1e-6):
        """A TVEG distance provider backed by this trace.

        Distances are floored at ``min_distance`` so path-loss gains stay
        finite when trajectories cross.
        """

        def provider(u: Node, v: Node, t: float) -> float:
            return max(self.distance(u, v, t), min_distance)

        return provider

    # ------------------------------------------------------------------
    def pairwise_distances(self, t_index: int) -> np.ndarray:
        """The full N×N distance matrix at sample index ``t_index``."""
        p = self._pos[t_index]
        diff = p[:, None, :] - p[None, :, :]
        return np.hypot(diff[..., 0], diff[..., 1])

    def extract_contacts(self, radio_range: float) -> ContactTrace:
        """Threshold distances at ``radio_range`` to obtain a contact trace.

        A contact spans consecutive samples with distance ≤ range; the
        sample spacing bounds the timing granularity.
        """
        if radio_range <= 0:
            raise GraphModelError("radio_range must be positive")
        T, n = self._pos.shape[0], self._pos.shape[1]
        # (T, N, N) boolean adjacency over time, vectorized per sample.
        contacts: List[Contact] = []
        within = np.empty((T, n, n), dtype=bool)
        for k in range(T):
            within[k] = self.pairwise_distances(k) <= radio_range
        for i in range(n):
            for j in range(i + 1, n):
                series = within[:, i, j]
                start = None
                for k in range(T):
                    if series[k] and start is None:
                        start = self._times[k]
                    elif not series[k] and start is not None:
                        contacts.append(
                            Contact(start, self._times[k], self._nodes[i], self._nodes[j])
                        )
                        start = None
                if start is not None:
                    contacts.append(
                        Contact(start, self.horizon, self._nodes[i], self._nodes[j])
                    )
        return ContactTrace(contacts, nodes=self._nodes, horizon=self.horizon)

"""Random-waypoint mobility model.

The classic MANET mobility model: each node repeatedly picks a uniform
waypoint in a rectangular area, travels to it in a straight line at a
uniformly drawn speed, pauses, and repeats.  Sampled onto a uniform time
grid this yields a :class:`~repro.mobility.positions.PositionTrace`, the
second (fully physical) TVEG source next to contact-trace enrichment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.rng import SeedLike, as_generator
from ..errors import GraphModelError
from .positions import PositionTrace

__all__ = ["RandomWaypoint"]


@dataclass(frozen=True)
class RandomWaypoint:
    """Random-waypoint generator configuration."""

    num_nodes: int = 20
    area: Tuple[float, float] = (100.0, 100.0)
    speed_range: Tuple[float, float] = (0.5, 2.0)   # m/s — pedestrian
    pause_range: Tuple[float, float] = (0.0, 120.0)  # s

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise GraphModelError("need at least 2 nodes")
        if self.area[0] <= 0 or self.area[1] <= 0:
            raise GraphModelError("area dimensions must be positive")
        lo, hi = self.speed_range
        if not (0 < lo <= hi):
            raise GraphModelError("require 0 < min speed <= max speed")
        plo, phi = self.pause_range
        if not (0 <= plo <= phi):
            raise GraphModelError("require 0 <= min pause <= max pause")

    def generate(
        self,
        horizon: float,
        sample_dt: float = 10.0,
        seed: SeedLike = None,
    ) -> PositionTrace:
        """Simulate the model and sample positions every ``sample_dt``."""
        if horizon <= 0 or sample_dt <= 0:
            raise GraphModelError("horizon and sample_dt must be positive")
        rng = as_generator(seed)
        times = np.arange(0.0, horizon + sample_dt * 0.5, sample_dt)
        T = len(times)
        pos = np.empty((T, self.num_nodes, 2))
        w, h = self.area

        for i in range(self.num_nodes):
            # Piecewise itinerary: (t_start, t_end, p_start, p_end) legs.
            t = 0.0
            here = np.array([rng.uniform(0, w), rng.uniform(0, h)])
            legs = []
            while t < horizon:
                target = np.array([rng.uniform(0, w), rng.uniform(0, h)])
                speed = rng.uniform(*self.speed_range)
                travel = float(np.linalg.norm(target - here)) / speed
                legs.append((t, t + travel, here.copy(), target.copy()))
                t += travel
                pause = rng.uniform(*self.pause_range)
                if pause > 0:
                    legs.append((t, t + pause, target.copy(), target.copy()))
                    t += pause
                here = target
            # Sample the itinerary on the grid.
            leg_idx = 0
            for k, tk in enumerate(times):
                while leg_idx + 1 < len(legs) and tk >= legs[leg_idx][1]:
                    leg_idx += 1
                t0, t1, p0, p1 = legs[leg_idx]
                frac = 0.0 if t1 == t0 else min(max((tk - t0) / (t1 - t0), 0.0), 1.0)
                pos[k, i] = p0 + frac * (p1 - p0)
        return PositionTrace(times, pos)

"""Protocol-level live simulation: execute plans as per-node processes.

The analytic simulator (:mod:`repro.sim`) fires whole schedule rounds
against ED-function coin flips — a :class:`~repro.api.BroadcastPlan` is
validated *statistically*, never exercised as actual node behavior.  This
package closes that gap with a deterministic discrete-event **protocol**
simulator: every node of the TVEG becomes a message-passing process with a
neighbor table maintained from the contact windows, a bounded transmit
queue, a local clock offset, and its own seeded RNG stream; the
:class:`~repro.protosim.executor.PlanExecutor` drives each node to follow
its plan rows as *local* behavior — broadcast a DATA frame at the row's
allocated cost, collect ACKs, retransmit with backoff when the budget
allows — rather than as a global oracle.

Three layers:

* :func:`execute_plan` / :func:`execute_schedule` — one protocol run of a
  plan, returning a :class:`ProtocolResult` (informed set, per-node energy
  actually spent including retransmissions and ACK overhead, message
  counts);
* :func:`run_protocol_trials` — seeded Monte-Carlo over independent runs,
  bit-identical for any worker count (same
  :func:`repro.parallel.derive_seeds` discipline as the analytic runner);
* :func:`check_analytic_parity` — the cross-validation harness: on a
  lossless :class:`~repro.channels.StaticChannel` with zero clock offsets
  and no retransmit budget, a protocol run informs exactly the analytic
  simulator's node set with identical per-node energy
  (:class:`ProtocolConfig.parity` is that configuration).

Runs tagged through the obs ledger emit one ``msg_sent`` /
``msg_received`` / ``msg_dropped`` / ``msg_retransmit`` event per frame,
which ``repro report`` renders as a per-message timeline.  See
:doc:`docs/PROTOCOL.md` for the event model and determinism contract.
"""

from .crossval import ParityReport, check_analytic_parity
from .executor import (
    PlanExecutor,
    ProtocolConfig,
    ProtocolResult,
    execute_plan,
    execute_schedule,
)
from .messages import MSG_ACK, MSG_DATA, MSG_HELLO, MessageCounts
from .node import NodeProcess
from .runner import ProtocolSummary, run_protocol_trials

__all__ = [
    "MSG_ACK",
    "MSG_DATA",
    "MSG_HELLO",
    "MessageCounts",
    "NodeProcess",
    "ParityReport",
    "PlanExecutor",
    "ProtocolConfig",
    "ProtocolResult",
    "ProtocolSummary",
    "check_analytic_parity",
    "execute_plan",
    "execute_schedule",
    "run_protocol_trials",
]

"""Cross-validation of the protocol simulator against the analytic one.

On a lossless non-fading channel the analytic executor is fully
deterministic (every ``φ_t(w)`` is 0 or 1), so a protocol run under
:meth:`~repro.protosim.executor.ProtocolConfig.parity` — no
retransmissions, no ACK traffic, zero clock offsets, free HELLOs — must
reproduce it *exactly*: identical informed node set, identical reception
instants, and bit-identical per-node energy (both engines sum each
relay's row costs in the same time-sorted order, so even the float
rounding agrees).

:func:`check_analytic_parity` runs both engines on the same inputs and
returns a :class:`ParityReport`; the analytic side's per-node energy is
captured by temporarily swapping in a private recording
:class:`~repro.obs.ledger.Ledger` and summing its ``energy_debited``
events (context ``"sim"``), which keeps the comparison independent of
the caller's ledger state.  A fading channel has no such guarantee —
passing one raises unless ``allow_fading=True`` (useful only to inspect
how far apart the engines drift statistically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Optional, Tuple

from .. import obs
from ..errors import GraphModelError
from ..obs.ledger import Ledger
from ..schedule.schedule import Schedule
from ..sim.simulator import simulate_schedule
from ..tveg.graph import TVEG
from .executor import ProtocolConfig, ProtocolResult, execute_schedule

__all__ = ["ParityReport", "check_analytic_parity"]

Node = Hashable


@dataclass(frozen=True)
class ParityReport:
    """Field-by-field comparison of one protocol run vs the analytic run."""

    #: every compared aspect agreed exactly
    ok: bool
    #: informed node sets agree
    informed_match: bool
    #: per-node radiated energy agrees bit-for-bit
    energy_match: bool
    #: per-node reception instants agree exactly
    reception_match: bool
    #: the protocol run's full result (for further inspection)
    protocol: ProtocolResult
    #: analytic informed set
    analytic_informed: FrozenSet[Node]
    #: analytic per-node energy (nonzero entries only)
    analytic_energy: Tuple[Tuple[Node, float], ...]
    #: human-readable mismatch descriptions (empty when ``ok``)
    mismatches: Tuple[str, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "ok" if self.ok else f"MISMATCH({len(self.mismatches)})"
        return (
            f"ParityReport({verdict}, informed="
            f"{len(self.analytic_informed)}/{self.protocol.num_nodes})"
        )


def _analytic_node_energy(
    tveg: TVEG, schedule: Schedule, source: Node
) -> Tuple[Dict[Node, float], FrozenSet[Node], Dict[Node, float]]:
    """Analytic per-node energy, informed set, and reception times.

    The analytic simulator only reports *total* energy; the per-relay
    split is recovered from its ``energy_debited`` ledger events, summed
    in emission order — the same order the simulator added the floats —
    so the recovered sums are the exact values a per-node accumulator
    would have produced.
    """
    private = Ledger()
    old = obs.set_ledger(private)
    try:
        outcome = simulate_schedule(tveg, schedule, source, seed=0)
    finally:
        obs.set_ledger(old)
    energy: Dict[Node, float] = {}
    for ev in private.events():
        if ev.type == obs.EV_ENERGY_DEBITED and ev.get("context") == "sim":
            relay = ev.get("relay")
            energy[relay] = energy.get(relay, 0.0) + ev.get("cost")
    return energy, outcome.received, dict(outcome.reception_times)


def check_analytic_parity(
    tveg: TVEG,
    schedule: Schedule,
    source: Node,
    deadline: Optional[float] = None,
    config: Optional[ProtocolConfig] = None,
    seed: int = 0,
    allow_fading: bool = False,
) -> ParityReport:
    """Run both engines on ``(tveg, schedule, source)`` and compare.

    ``config`` defaults to :meth:`ProtocolConfig.parity`.  ``seed`` is
    irrelevant on a lossless channel (no randomness is consumed) but kept
    explicit so the report itself is reproducible under ``allow_fading``.
    """
    if tveg.is_fading and not allow_fading:
        raise GraphModelError(
            "analytic parity is only guaranteed on non-fading channels; "
            "pass allow_fading=True to compare statistically anyway"
        )
    cfg = config if config is not None else ProtocolConfig.parity()
    proto = execute_schedule(
        tveg, schedule, source, deadline, seed=seed, config=cfg
    )
    ana_energy, ana_informed, ana_reception = _analytic_node_energy(
        tveg, schedule, source
    )

    mismatches = []
    informed_match = proto.informed == ana_informed
    if not informed_match:
        only_p = sorted(map(repr, proto.informed - ana_informed))
        only_a = sorted(map(repr, ana_informed - proto.informed))
        mismatches.append(
            f"informed sets differ: protocol-only={only_p}, "
            f"analytic-only={only_a}"
        )

    proto_energy = {n: e for n, e in proto.node_energy if e != 0.0}
    energy_match = proto_energy == ana_energy
    if not energy_match:
        for n in sorted(set(proto_energy) | set(ana_energy), key=repr):
            pe, ae = proto_energy.get(n, 0.0), ana_energy.get(n, 0.0)
            if pe != ae:
                mismatches.append(
                    f"energy of {n!r}: protocol={pe!r} analytic={ae!r}"
                )

    proto_reception = dict(proto.reception_times)
    reception_match = proto_reception == ana_reception
    if not reception_match:
        for n in sorted(set(proto_reception) | set(ana_reception), key=repr):
            pt = proto_reception.get(n)
            at = ana_reception.get(n)
            if pt != at:
                mismatches.append(
                    f"reception of {n!r}: protocol={pt!r} analytic={at!r}"
                )

    ok = informed_match and energy_match and reception_match
    return ParityReport(
        ok=ok,
        informed_match=informed_match,
        energy_match=energy_match,
        reception_match=reception_match,
        protocol=proto,
        analytic_informed=ana_informed,
        analytic_energy=tuple(sorted(ana_energy.items(), key=lambda kv: repr(kv[0]))),
        mismatches=tuple(mismatches),
    )

"""Seeded Monte-Carlo over independent protocol runs.

Same determinism discipline as :func:`repro.sim.run_trials`: every
trial's seed is derived up front with :func:`repro.parallel.derive_seeds`
(the exact integer stream :func:`repro.core.rng.spawn` draws), results
land by global trial index, and a recording obs ledger forces the serial
path so no per-message events are lost in worker processes.  Because the
executor takes an *integer* entropy per trial, serial and parallel runs
are not merely statistically equivalent — trial ``i`` is the same
:class:`~repro.protosim.executor.ProtocolResult` object value for any
worker count, which :func:`run_protocol_trials` exposes directly via
``keep_outcomes`` (the byte-identity tests compare those tuples with
``==``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

from .. import obs
from ..core.rng import SeedLike
from ..parallel import chunk_indices, derive_seeds, parallel_map, resolve_workers
from ..schedule.schedule import Schedule
from ..tveg.graph import TVEG
from .executor import PlanExecutor, ProtocolConfig, ProtocolResult

__all__ = ["ProtocolSummary", "run_protocol_trials"]

Node = Hashable


@dataclass(frozen=True)
class ProtocolSummary:
    """Aggregated statistics over independent protocol trials."""

    num_trials: int
    num_nodes: int
    mean_delivery: float
    std_delivery: float
    mean_energy: float
    std_energy: float
    mean_data_sent: float
    mean_retransmits: float
    #: per-trial results, trial order (empty unless ``keep_outcomes``)
    outcomes: Tuple[ProtocolResult, ...] = ()

    def delivery_ci95(self) -> Tuple[float, float]:
        """Normal-approximation 95 % confidence interval on delivery."""
        half = 1.96 * self.std_delivery / math.sqrt(max(self.num_trials, 1))
        return (self.mean_delivery - half, self.mean_delivery + half)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProtocolSummary(delivery={self.mean_delivery:.3f}±"
            f"{self.std_delivery:.3f}, energy={self.mean_energy:.4g}, "
            f"retx={self.mean_retransmits:.2f}, trials={self.num_trials})"
        )


def _protocol_chunk(payload) -> List[ProtocolResult]:
    """Worker-process body: run one contiguous block of trials."""
    tveg, schedule, source, deadline, config, seeds, start = payload
    ex = PlanExecutor(tveg, schedule, source, deadline, config)
    return [
        ex.run(seed, trial_id=start + j) for j, seed in enumerate(seeds)
    ]


def _mean_std(values: List[float], n: int) -> Tuple[float, float]:
    mean = sum(values) / n
    if n <= 1:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(var)


def run_protocol_trials(
    tveg: TVEG,
    schedule: Schedule,
    source: Node,
    deadline: Optional[float] = None,
    num_trials: int = 100,
    seed: SeedLike = None,
    config: Optional[ProtocolConfig] = None,
    workers: Optional[int] = None,
    keep_outcomes: bool = False,
) -> ProtocolSummary:
    """Run ``num_trials`` independent protocol executions and aggregate.

    ``workers > 1`` fans trials out over processes; the summary — and,
    with ``keep_outcomes=True``, every individual
    :class:`~repro.protosim.executor.ProtocolResult` — is identical to
    the serial run for the same ``seed``.
    """
    w = resolve_workers(workers)
    if w > 1 and obs.ledger_enabled():
        obs.counter("parallel.ledger_fallback")
        w = 1
    seeds = derive_seeds(seed, num_trials)
    results: List[Optional[ProtocolResult]] = [None] * num_trials
    with obs.span(
        "protosim.run_trials", trials=num_trials,
        transmissions=len(schedule), workers=w,
    ):
        if w > 1 and num_trials > 1:
            payloads = [
                (tveg, schedule, source, deadline, config,
                 seeds[r.start:r.stop], r.start)
                for r in chunk_indices(num_trials, w)
            ]
            i = 0
            for chunk in parallel_map(_protocol_chunk, payloads, workers=w):
                for res in chunk:
                    results[i] = res
                    i += 1
        else:
            ex = PlanExecutor(tveg, schedule, source, deadline, config)
            for i, s in enumerate(seeds):
                results[i] = ex.run(s, trial_id=i)
    obs.counter("protosim.trials", num_trials)

    n = max(num_trials, 1)
    deliveries = [r.delivery_ratio for r in results if r is not None]
    energies = [r.energy for r in results if r is not None]
    mean_d, std_d = _mean_std(deliveries or [0.0], n)
    mean_e, std_e = _mean_std(energies or [0.0], n)
    return ProtocolSummary(
        num_trials=num_trials,
        num_nodes=tveg.num_nodes,
        mean_delivery=mean_d,
        std_delivery=std_d,
        mean_energy=mean_e,
        std_energy=std_e,
        mean_data_sent=sum(
            r.counts.data_sent for r in results if r is not None
        ) / n,
        mean_retransmits=sum(
            r.counts.retransmits for r in results if r is not None
        ) / n,
        outcomes=tuple(results) if keep_outcomes else (),
    )

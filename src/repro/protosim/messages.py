"""Message vocabulary and counters of the protocol simulator.

Three frame kinds cover the whole protocol:

``hello``
    Neighbor-table maintenance beacon, sent when a contact window opens.
    Carries no payload; its (configurable, default-zero) cost models the
    discovery overhead the analytic pipeline ignores.
``data``
    One broadcast frame of the packet, sent by a relay following its plan
    row at that row's allocated cost.  Loss is drawn per receiver from the
    link's ED-function at that cost — the same ``φ_t(w)`` the analytic
    simulator flips.
``ack``
    Unicast receipt confirmation from a receiver back to the DATA sender.
    Only exists when :class:`~repro.protosim.executor.ProtocolConfig`
    enables acknowledgements; drives the retransmission decision.

:class:`MessageCounts` is the run-level tally — a frozen value object so
:class:`~repro.protosim.executor.ProtocolResult` stays hashable and
byte-comparable across runs (the determinism tests compare results with
plain ``==``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MSG_ACK", "MSG_DATA", "MSG_HELLO", "MessageCounts"]

#: neighbor-discovery beacon at contact-up
MSG_HELLO = "hello"
#: one broadcast frame of the packet (a plan row firing)
MSG_DATA = "data"
#: unicast receipt confirmation from receiver to DATA sender
MSG_ACK = "ack"


@dataclass(frozen=True)
class MessageCounts:
    """Per-run message tallies, by frame kind and fate.

    ``data_received`` counts successful decode events (one per addressed
    receiver per frame — frames address the currently uninformed
    neighbors); ``data_dropped`` counts channel losses plus queue overflows
    (``queue_dropped`` isolates the latter).  ``retransmits`` is the
    number of DATA frames that were repeats of an earlier attempt —
    included in ``data_sent`` as well.
    """

    hello_sent: int = 0
    data_sent: int = 0
    data_received: int = 0
    data_dropped: int = 0
    ack_sent: int = 0
    ack_received: int = 0
    ack_dropped: int = 0
    retransmits: int = 0
    queue_dropped: int = 0

    @property
    def total_sent(self) -> int:
        """Every frame that actually hit the air, of any kind."""
        return self.hello_sent + self.data_sent + self.ack_sent

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MessageCounts(hello={self.hello_sent}, "
            f"data={self.data_sent}/{self.data_received}rx/"
            f"{self.data_dropped}drop, ack={self.ack_sent}, "
            f"retx={self.retransmits})"
        )

"""Per-node process state of the protocol simulator.

Each TVEG node becomes one :class:`NodeProcess`: a neighbor table kept
current by contact-up/contact-down events, a local clock (global time plus
a per-node offset), a bounded transmit queue modelled as a busy-until
cursor plus a pending-slot counter, an informed flag with the reception
instant, an energy meter, and a private RNG stream derived from the run's
:class:`numpy.random.SeedSequence` — node ``i`` always draws from stream
``i`` regardless of event interleaving, which is one half of the
bit-reproducibility contract (the other half is the executor's totally
ordered event heap).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set

import numpy as np

__all__ = ["NodeProcess"]

Node = Hashable


class NodeProcess:
    """Protocol-side state of one node; the executor drives transitions."""

    __slots__ = (
        "node",
        "index",
        "offset",
        "rng",
        "neighbors",
        "informed_at",
        "energy",
        "busy_until",
        "queued",
        "deferred",
    )

    def __init__(
        self,
        node: Node,
        index: int,
        offset: float,
        rng: np.random.Generator,
    ) -> None:
        self.node = node
        #: position in ``tveg.nodes`` — fixes iteration and tie-break order
        self.index = index
        #: local clock offset: local time = global time + offset
        self.offset = float(offset)
        self.rng = rng
        #: nodes currently in contact (maintained by up/down events)
        self.neighbors: Set[Node] = set()
        #: global instant the packet was decoded (None = still uninformed)
        self.informed_at: Optional[float] = None
        #: energy actually radiated by this node (all frame kinds)
        self.energy: float = 0.0
        #: transmit queue: the radio is busy until this global instant
        self.busy_until: float = 0.0
        #: frames waiting in the transmit queue (bounded by the config)
        self.queued: int = 0
        #: plan rows whose fire instant passed while uninformed, keyed by
        #: the global fire time — re-armed only if the node is informed at
        #: exactly that instant (the analytic fixpoint), abandoned otherwise
        self.deferred: Dict[float, List[object]] = {}

    @property
    def informed(self) -> bool:
        return self.informed_at is not None

    def local_time(self, t: float) -> float:
        """This node's clock reading at global instant ``t``."""
        return t + self.offset

    def global_time(self, local: float) -> float:
        """The global instant at which this node's clock reads ``local``."""
        return local - self.offset

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            f"informed@{self.informed_at:g}" if self.informed else "uninformed"
        )
        return (
            f"NodeProcess({self.node!r}, {state}, "
            f"energy={self.energy:.3g}, nbrs={len(self.neighbors)})"
        )

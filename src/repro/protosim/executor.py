"""The protocol event loop: one run of a plan as per-node behavior.

The executor turns a :class:`~repro.schedule.schedule.Schedule` into
*local* node behavior and plays it on a totally ordered discrete-event
heap.  Five event kinds exist — contact ``down`` / ``up`` (neighbor-table
maintenance plus HELLO beacons), ``tx`` (a plan row coming due on its
relay's local clock), ``drain`` (the transmit queue releasing a frame),
and ``retx`` (a retransmission attempt).  Heap entries are
``(time, priority, seq)``-ordered with ``down < up < send`` at equal
instants, so half-open contact intervals resolve correctly and every
frame sees an up-to-date neighbor table; ``seq`` is a monotone counter,
which makes the whole run a total order — replaying the same seed replays
the identical event sequence.

**Parity with the analytic simulator** (:func:`repro.sim.simulate_schedule`)
is engineered, not accidental:

* Receptions are processed *inline* at the transmit instant ``t`` — a
  receiver is informed at ``t`` (its recorded reception time is
  ``t + τ``), exactly the analytic ``received.add(v)`` /
  ``reception[v] = t + τ`` pair.
* A plan row that comes due while its relay is uninformed is parked under
  its exact fire instant; if the relay becomes informed *at that same
  instant* the row is re-armed (the analytic same-timestamp causal
  fixpoint), otherwise it stays silent forever (the analytic abandonment
  of never-enabled rows in a timestamp group).
* Loss draws short-circuit at ``p ≤ 0`` and ``p ≥ 1`` without consuming
  randomness, so a lossless :class:`~repro.channels.StaticChannel` run
  draws nothing and its outcome is seed-independent.

Under :meth:`ProtocolConfig.parity` (no retries, no ACKs, zero offsets,
zero-cost HELLOs, empty-queue service) those three properties make the
informed set, per-node energy, and reception times *bit-identical* to the
analytic simulator on any non-fading channel —
:mod:`repro.protosim.crossval` asserts this.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

import numpy as np

from .. import obs
from ..core.rng import SeedLike
from ..errors import ScheduleError
from ..schedule.schedule import Schedule, Transmission
from ..tveg.graph import TVEG
from .messages import MSG_ACK, MSG_DATA, MSG_HELLO, MessageCounts
from .node import NodeProcess

__all__ = [
    "PlanExecutor",
    "ProtocolConfig",
    "ProtocolResult",
    "execute_plan",
    "execute_schedule",
]

Node = Hashable

# Event priorities at equal instants: a contact that closes at t is already
# gone when one that opens at t is added (half-open intervals), and every
# frame sent at t sees the post-update neighbor table.
_PRIO_DOWN = 0
_PRIO_UP = 1
_PRIO_SEND = 2


@dataclass(frozen=True)
class ProtocolConfig:
    """Protocol knobs of one executor run.

    The defaults describe a small but realistic protocol: ACK-driven
    retransmissions with exponential backoff, a 16-frame transmit queue,
    perfectly synchronized clocks, and free HELLO beacons.
    :meth:`parity` is the degenerate configuration under which the
    protocol run provably matches the analytic simulator.
    """

    #: retransmission attempts allowed per plan row (0 = single shot)
    max_retries: int = 2
    #: base retransmission delay; attempt ``a`` waits ``backoff · 2^a``
    backoff: float = 5.0
    #: receivers confirm DATA frames; retransmit only toward missing ACKs
    ack: bool = True
    #: transmit cost of one ACK (None = the link's backbone min-cost)
    ack_cost: Optional[float] = None
    #: transmit cost of one HELLO beacon at contact-up
    hello_cost: float = 0.0
    #: frames the transmit queue holds while the radio is busy
    queue_capacity: int = 16
    #: radio occupancy per DATA frame (0 = queue never binds)
    service_time: float = 0.0
    #: explicit per-node clock offsets (local = global + offset)
    clock_offsets: Optional[Tuple[Tuple[Node, float], ...]] = None
    #: draw offsets uniformly from ``[-jitter, +jitter]`` when no explicit
    #: offsets are given (0 = perfectly synchronized clocks)
    clock_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ScheduleError("max_retries must be >= 0")
        if self.backoff <= 0:
            raise ScheduleError("backoff must be > 0")
        if self.hello_cost < 0:
            raise ScheduleError("hello_cost must be >= 0")
        if self.queue_capacity < 0:
            raise ScheduleError("queue_capacity must be >= 0")
        if self.service_time < 0:
            raise ScheduleError("service_time must be >= 0")
        if self.clock_jitter < 0:
            raise ScheduleError("clock_jitter must be >= 0")
        if self.ack_cost is not None and self.ack_cost < 0:
            raise ScheduleError("ack_cost must be >= 0")
        if self.clock_offsets is not None and not isinstance(
            self.clock_offsets, tuple
        ):
            # Accept any mapping for ergonomics; store a canonical tuple so
            # the config stays hashable and comparable.
            items = dict(self.clock_offsets).items()
            object.__setattr__(
                self,
                "clock_offsets",
                tuple(sorted(((k, float(v)) for k, v in items),
                             key=lambda kv: repr(kv[0]))),
            )

    @classmethod
    def parity(cls) -> "ProtocolConfig":
        """The configuration matching the analytic simulator exactly.

        Single-shot transmissions (no retransmissions to add energy), no
        ACK traffic, free HELLOs, zero clock offsets, and zero service
        time (the queue never delays a frame).
        """
        return cls(
            max_retries=0,
            ack=False,
            hello_cost=0.0,
            service_time=0.0,
            clock_jitter=0.0,
        )

    def offset_for(self, node: Node) -> Optional[float]:
        """The explicit offset for ``node`` (None = not specified)."""
        if self.clock_offsets is None:
            return None
        for k, v in self.clock_offsets:
            if k == node:
                return v
        return 0.0


@dataclass(frozen=True)
class ProtocolResult:
    """Outcome of one protocol-level execution of a schedule.

    A pure value object: every field is hashable and deterministic for a
    given ``(tveg, schedule, source, config, seed)``, so two runs compare
    with ``==`` — the byte-reproducibility tests rely on that.
    """

    #: nodes that decoded the packet (includes the source)
    informed: FrozenSet[Node]
    #: ``(node, global reception instant)``, sorted by (time, node order)
    reception_times: Tuple[Tuple[Node, float], ...]
    #: per-node energy actually radiated (every node, TVEG node order) —
    #: DATA retransmissions and ACK/HELLO overhead included
    node_energy: Tuple[Tuple[Node, float], ...]
    #: run-level message tallies by kind and fate
    counts: MessageCounts
    #: nodes in the TVEG (denominator of :attr:`delivery_ratio`)
    num_nodes: int
    #: plan rows that never fired (relay uninformed at their instant)
    silent_rows: int = 0

    @property
    def energy(self) -> float:
        """Total energy radiated by all nodes."""
        return float(sum(e for _, e in self.node_energy))

    @property
    def delivery_ratio(self) -> float:
        """Fraction of all nodes that decoded the packet."""
        return len(self.informed) / self.num_nodes if self.num_nodes else 0.0

    def reception_of(self, node: Node) -> Optional[float]:
        """Global reception instant of ``node`` (None = never informed)."""
        for n, t in self.reception_times:
            if n == node:
                return t
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProtocolResult(informed={len(self.informed)}/{self.num_nodes}, "
            f"energy={self.energy:.4g}, {self.counts!r})"
        )


class _Frame:
    """One DATA frame attempt travelling through queue/retx events."""

    __slots__ = ("proc", "row", "attempt")

    def __init__(self, proc: NodeProcess, row: Transmission, attempt: int):
        self.proc = proc
        self.row = row
        self.attempt = attempt


class PlanExecutor:
    """Drives one protocol run of ``schedule`` on ``tveg`` from ``source``.

    Construct once, call :meth:`run` per trial — the executor itself holds
    only immutable inputs; all mutable state lives in the per-run
    :class:`~repro.protosim.node.NodeProcess` table, so one executor can
    be reused across seeds.
    """

    def __init__(
        self,
        tveg: TVEG,
        schedule: Schedule,
        source: Node,
        deadline: Optional[float] = None,
        config: Optional[ProtocolConfig] = None,
    ) -> None:
        if source not in tveg.nodes:
            raise ScheduleError(f"source {source!r} is not a TVEG node")
        self.tveg = tveg
        self.schedule = schedule
        self.source = source
        self.deadline = float(deadline) if deadline is not None else None
        self.config = config if config is not None else ProtocolConfig()
        self._node_index: Dict[Node, int] = {
            n: i for i, n in enumerate(tveg.nodes)
        }

    # ------------------------------------------------------------------
    def run(
        self, seed: SeedLike = None, trial_id: Optional[int] = None
    ) -> ProtocolResult:
        """Execute one seeded protocol trial; see the module docstring."""
        state = _RunState(self, seed, trial_id)
        return state.execute()


class _RunState:
    """All mutable state of one :meth:`PlanExecutor.run` invocation."""

    def __init__(
        self,
        ex: PlanExecutor,
        seed: SeedLike,
        trial_id: Optional[int],
    ) -> None:
        self.ex = ex
        self.tveg = ex.tveg
        self.cfg = ex.config
        self.trial_id = trial_id
        self.heap: List[tuple] = []
        self.seq = 0
        self.counts: Dict[str, int] = {
            "hello_sent": 0, "data_sent": 0, "data_received": 0,
            "data_dropped": 0, "ack_sent": 0, "ack_received": 0,
            "ack_dropped": 0, "retransmits": 0, "queue_dropped": 0,
        }
        self.reception: Dict[Node, float] = {}
        self.silent_rows = 0
        # Ledger plumbing, hoisted once (the Monte-Carlo runner calls the
        # executor in a tight loop with the ledger off).
        self.led = obs.get_ledger()
        self.recording = self.led.enabled

        # --- seeded streams: one per node + one for clock offsets -------
        entropy = self._entropy(seed)
        children = np.random.SeedSequence(entropy).spawn(
            self.tveg.num_nodes + 1
        )
        offsets_rng = np.random.default_rng(children[-1])

        self.procs: Dict[Node, NodeProcess] = {}
        for i, node in enumerate(self.tveg.nodes):
            off = self.cfg.offset_for(node)
            if off is None:
                off = (
                    float(offsets_rng.uniform(
                        -self.cfg.clock_jitter, self.cfg.clock_jitter
                    ))
                    if self.cfg.clock_jitter > 0
                    else 0.0
                )
            self.procs[node] = NodeProcess(
                node, i, off, np.random.default_rng(children[i])
            )

        src = self.procs[self.ex.source]
        src.informed_at = 0.0
        self.reception[src.node] = 0.0

        # --- event horizon: cover the deadline and every row's local fire
        # instant (offsets can push a row past the nominal latency) -------
        fire_times = [
            max(0.0, row.time - self.procs[row.relay].offset)
            for row in self.ex.schedule
        ]
        horizon = max(
            [self.ex.deadline or 0.0, self.tveg.tau] + fire_times
        )
        self.horizon = horizon

        # --- contact windows → neighbor-table events ---------------------
        for u, v, start, end in self.tveg.tvg.contacts():
            if end <= 0.0 or start > horizon:
                continue
            self._push(max(0.0, start), _PRIO_UP, "up", (u, v))
            if end <= horizon:
                self._push(end, _PRIO_DOWN, "down", (u, v))

        # --- plan rows come due on each relay's local clock --------------
        for row, fire_t in zip(self.ex.schedule, fire_times):
            self._push(fire_t, _PRIO_SEND, "tx", row)

    @staticmethod
    def _entropy(seed: SeedLike) -> int:
        """A SeedSequence entropy int from any accepted seed form."""
        if isinstance(seed, (int, np.integer)):
            return int(seed)
        if isinstance(seed, np.random.Generator):
            return int(seed.integers(0, 2**63 - 1))
        if seed is None:
            return int(np.random.default_rng().integers(0, 2**63 - 1))
        raise ScheduleError(f"unsupported seed {seed!r}")

    # ------------------------------------------------------------------
    def _push(self, t: float, prio: int, kind: str, payload) -> None:
        heapq.heappush(self.heap, (t, prio, self.seq, kind, payload))
        self.seq += 1

    def _emit(self, ev_type: str, t: float, **fields) -> None:
        if self.recording:
            self.led.emit(ev_type, t=t, trial=self.trial_id, **fields)

    # ------------------------------------------------------------------
    def execute(self) -> ProtocolResult:
        heap = self.heap
        while heap:
            t, _prio, _seq, kind, payload = heapq.heappop(heap)
            if kind == "up":
                self._contact_up(t, *payload)
            elif kind == "down":
                u, v = payload
                self.procs[u].neighbors.discard(v)
                self.procs[v].neighbors.discard(u)
            elif kind == "tx":
                self._row_due(t, payload)
            elif kind == "drain":
                frame = payload
                frame.proc.queued -= 1
                self._transmit(t, frame)
            else:  # retx
                self._enqueue(t, payload)
        return self._result()

    # ------------------------------------------------------------------
    def _contact_up(self, t: float, u: Node, v: Node) -> None:
        """A contact window opened: update tables, beacon HELLOs."""
        pu, pv = self.procs[u], self.procs[v]
        pu.neighbors.add(v)
        pv.neighbors.add(u)
        cost = self.cfg.hello_cost
        for sender, peer in ((pu, v), (pv, u)):
            sender.energy += cost
            self.counts["hello_sent"] += 1
            self._emit(
                obs.EV_MSG_SENT, t, msg=MSG_HELLO, src=sender.node,
                dst=peer, cost=cost, outcome="sent",
            )

    # ------------------------------------------------------------------
    def _row_due(self, t: float, row: Transmission) -> None:
        """A plan row reached its fire instant on the relay's clock."""
        proc = self.procs[row.relay]
        if proc.informed:
            self._enqueue(t, _Frame(proc, row, 0))
        else:
            # Park under the exact instant: re-armed only if the relay is
            # informed at this same t (the analytic causal fixpoint).
            proc.deferred.setdefault(t, []).append(row)

    def _rearm(self, proc: NodeProcess, t: float) -> None:
        """Re-arm rows parked at exactly ``t`` on a freshly informed node."""
        rows = proc.deferred.pop(t, None)
        if rows:
            for row in rows:
                self._push(t, _PRIO_SEND, "tx", row)

    # ------------------------------------------------------------------
    def _enqueue(self, t: float, frame: _Frame) -> None:
        """Admit a DATA frame to the relay's (bounded) transmit queue."""
        proc = frame.proc
        if proc.busy_until <= t:
            proc.busy_until = t + self.cfg.service_time
            self._transmit(t, frame)
            return
        if proc.queued >= self.cfg.queue_capacity:
            self.counts["data_dropped"] += 1
            self.counts["queue_dropped"] += 1
            self._emit(
                obs.EV_MSG_DROPPED, t, msg=MSG_DATA, src=proc.node,
                dst=None, cost=frame.row.cost, outcome="dropped",
                reason="queue_full", attempt=frame.attempt,
            )
            return
        release = proc.busy_until
        proc.queued += 1
        proc.busy_until = release + self.cfg.service_time
        self._push(release, _PRIO_SEND, "drain", frame)

    # ------------------------------------------------------------------
    def _audience(self, proc: NodeProcess, t: float) -> List[NodeProcess]:
        """Uninformed, *currently adjacent* table members, in node order.

        The table is a superset of true adjacency (contact presence vs the
        windowed ``ρ_τ`` predicate), so each candidate is re-checked
        against the TVEG — this is exactly the analytic audience.
        """
        tveg = self.tveg
        u = proc.node
        out = [
            self.procs[v]
            for v in sorted(proc.neighbors, key=self._node_key)
            if not self.procs[v].informed and tveg.adjacent(u, v, t)
        ]
        return out

    def _node_key(self, node: Node) -> int:
        return self.ex._node_index[node]

    # ------------------------------------------------------------------
    def _transmit(self, t: float, frame: _Frame) -> None:
        """Put one DATA frame on the air; deliveries happen inline at t."""
        proc, row = frame.proc, frame.row
        cost = row.cost
        tveg = self.tveg
        audience = self._audience(proc, t)

        proc.energy += cost
        self.counts["data_sent"] += 1
        if frame.attempt > 0:
            self.counts["retransmits"] += 1
            self._emit(
                obs.EV_MSG_RETRANSMIT, t, msg=MSG_DATA, src=proc.node,
                dst=None, cost=cost, outcome="retransmit",
                attempt=frame.attempt,
            )
        self._emit(
            obs.EV_MSG_SENT, t, msg=MSG_DATA, src=proc.node, dst=None,
            cost=cost, outcome="sent", attempt=frame.attempt,
        )

        acked = 0
        for rx in audience:
            p_fail = tveg.failure(proc.node, rx.node, t, cost)
            # Short-circuit the degenerate probabilities so deterministic
            # channels consume no randomness (the parity contract).
            if p_fail <= 0.0:
                ok = True
            elif p_fail >= 1.0:
                ok = False
            else:
                ok = rx.rng.random() >= p_fail
            if ok:
                self.counts["data_received"] += 1
                rx.informed_at = t
                self.reception[rx.node] = t + tveg.tau
                self._emit(
                    obs.EV_MSG_RECEIVED, t + tveg.tau, msg=MSG_DATA,
                    src=proc.node, dst=rx.node, cost=cost,
                    outcome="received", attempt=frame.attempt,
                )
                self._rearm(rx, t)
                if self.cfg.ack:
                    acked += self._send_ack(t, rx, proc)
            else:
                self.counts["data_dropped"] += 1
                self._emit(
                    obs.EV_MSG_DROPPED, t, msg=MSG_DATA, src=proc.node,
                    dst=rx.node, cost=cost, outcome="dropped",
                    reason="loss", attempt=frame.attempt,
                )

        self._maybe_retransmit(t, frame, audience, acked)

    def _send_ack(self, t: float, rx: NodeProcess, to: NodeProcess) -> int:
        """Unicast an ACK back to the DATA sender; 1 if it decoded."""
        tveg = self.tveg
        w = self.cfg.ack_cost
        if w is None:
            w = tveg.min_cost(rx.node, to.node, t)
            if not math.isfinite(w):  # pragma: no cover - defensive
                w = 0.0
        rx.energy += w
        self.counts["ack_sent"] += 1
        self._emit(
            obs.EV_MSG_SENT, t, msg=MSG_ACK, src=rx.node, dst=to.node,
            cost=w, outcome="sent",
        )
        p_fail = tveg.failure(rx.node, to.node, t, w)
        if p_fail <= 0.0:
            ok = True
        elif p_fail >= 1.0:
            ok = False
        else:
            ok = to.rng.random() >= p_fail
        if ok:
            self.counts["ack_received"] += 1
            self._emit(
                obs.EV_MSG_RECEIVED, t, msg=MSG_ACK, src=rx.node,
                dst=to.node, cost=w, outcome="received",
            )
            return 1
        self.counts["ack_dropped"] += 1
        self._emit(
            obs.EV_MSG_DROPPED, t, msg=MSG_ACK, src=rx.node, dst=to.node,
            cost=w, outcome="dropped", reason="loss",
        )
        return 0

    def _maybe_retransmit(
        self, t: float, frame: _Frame, audience: List[NodeProcess], acked: int
    ) -> None:
        """Schedule a repeat of this frame if the policy calls for one."""
        cfg = self.cfg
        if frame.attempt >= cfg.max_retries:
            return
        if cfg.ack:
            # ACK-driven: repeat only while some addressed receiver has
            # not confirmed (an audience of zero needs no repeat).
            if not audience or acked >= len(audience):
                return
        elif not audience:
            # Blind mode still skips pointless repeats into silence.
            return
        rt = t + cfg.backoff * (2.0 ** frame.attempt)
        if rt > self.horizon:
            return
        self._push(
            rt, _PRIO_SEND, "retx",
            _Frame(frame.proc, frame.row, frame.attempt + 1),
        )

    # ------------------------------------------------------------------
    def _result(self) -> ProtocolResult:
        idx = self.ex._node_index
        self.silent_rows = sum(
            len(rows) for p in self.procs.values() for rows in p.deferred.values()
        )
        informed = frozenset(
            n for n, p in self.procs.items() if p.informed
        )
        reception = tuple(
            sorted(self.reception.items(), key=lambda kv: (kv[1], idx[kv[0]]))
        )
        energy = tuple(
            (n, self.procs[n].energy) for n in self.tveg.nodes
        )
        return ProtocolResult(
            informed=informed,
            reception_times=reception,
            node_energy=energy,
            counts=MessageCounts(**self.counts),
            num_nodes=self.tveg.num_nodes,
            silent_rows=self.silent_rows,
        )


# ----------------------------------------------------------------------
def execute_schedule(
    tveg: TVEG,
    schedule: Schedule,
    source: Node,
    deadline: Optional[float] = None,
    seed: SeedLike = None,
    config: Optional[ProtocolConfig] = None,
    trial_id: Optional[int] = None,
) -> ProtocolResult:
    """One protocol-level execution of ``schedule`` on ``tveg``.

    The per-schedule counterpart of :func:`repro.sim.simulate_schedule`:
    same inputs, but the schedule runs as per-node message passing under
    ``config`` (default :class:`ProtocolConfig`) instead of as an
    analytic round fixpoint.
    """
    return PlanExecutor(tveg, schedule, source, deadline, config).run(
        seed, trial_id
    )


def execute_plan(
    plan,
    tveg: Optional[TVEG] = None,
    seed: SeedLike = None,
    config: Optional[ProtocolConfig] = None,
    trial_id: Optional[int] = None,
) -> ProtocolResult:
    """Execute a :class:`~repro.api.BroadcastPlan` at protocol level.

    ``plan`` is duck-typed: anything with ``schedule`` / ``tveg`` /
    ``source`` / ``deadline`` attributes works.  Pass ``tveg=`` to run
    the plan on a *different* graph than it was computed on — e.g. a
    fading twin of the planning TVEG, the paper's Fig. 6 stress test at
    protocol level.
    """
    graph = tveg if tveg is not None else plan.tveg
    return execute_schedule(
        graph, plan.schedule, plan.source, plan.deadline,
        seed=seed, config=config, trial_id=trial_id,
    )

"""Array-native kernels for the sweep/DCS/Steiner hot path.

Three stages of the EEDCB pipeline dominate ``eedcb_run`` (the auxiliary
graph build is ~80 % of it at N=50): the per-node timeline sweeps plus
contact-cost evaluation, the DCS level construction, and the greedy
directed-Steiner expansion.  This module reimplements them as batched
numpy operations while reproducing the stdlib path **byte for byte**:

* :func:`node_components` replaces the event-by-event
  :class:`~repro.temporal.sweep.NodeSweep` with per-node *contact
  component arrays* — one canonically sorted ``(cost, start, end,
  neighbor)`` row per τ-eroded adjacency component, costs taken from the
  TVEG's shared per-contact cost cache so they are the same float objects
  the point-query path produces.
* :func:`build_numpy_aux_graph` derives every DCS and every auxiliary
  node/edge from those arrays with ``searchsorted`` / cumulative-sum
  queries instead of per-entry Python loops, emitting the exact node ids,
  edge order, and weights of
  :func:`~repro.auxgraph.compact.build_compact_aux_graph` (whose module
  docstring explains why insertion order is part of the contract).
* :func:`greedy_incremental_dst_numpy` runs the same incremental
  multi-source Dijkstra as
  :func:`~repro.steiner.dst.greedy_incremental_dst` but decodes each
  settled CSR row with two bulk ``tolist`` calls and relaxes over native
  ints and floats (auxiliary rows are short, so batch decoding beats both
  per-element ``array`` indexing and per-row vectorization).  The heap
  receives the same (distance, node) multiset, so the pop sequence — and
  with it the ``expansions`` counter — is identical.

Byte-identity has one precondition: the distance provider must certify
``constant_within_contacts`` (the standard trace pipeline does), because
the component arrays evaluate each contact's cost once at its start.
:func:`build_numpy_aux_graph` delegates to the stdlib builder otherwise.

Nothing here imports at package-import time — ``import numpy`` happens
only when a numpy kernel is actually requested, keeping the stdlib path
self-sufficient.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import obs
from ..auxgraph.compact import CompactAuxGraph, build_compact_aux_graph
from ..auxgraph.model import AuxNode, state_node, tx_node
from ..dts.dts import DiscreteTimeSet, build_dts
from ..errors import GraphModelError, InfeasibleError
from ..tveg.costsets import DiscreteCostSet
from ..tveg.graph import TVEG

__all__ = [
    "node_components",
    "NumpyAuxGraph",
    "build_numpy_aux_graph",
    "greedy_incremental_dst_numpy",
    "round_down_many",
    "level_index_many",
]

Node = Hashable
Edge = Tuple[AuxNode, AuxNode]


class NodeComponents:
    """One node's contact components in canonical DCS order.

    Rows are the τ-eroded adjacency components of every incident edge,
    sorted by ``(cost, repr(neighbor))`` — the exact
    :func:`~repro.tveg.costsets._sorted_entries` key.  At any instant at
    most one component per neighbor is active (interval sets are
    normalized), and distinct neighbors have distinct ``repr``, so the
    *active subset* of this canonical order is precisely the entry order
    of the stdlib-built :class:`~repro.tveg.costsets.DiscreteCostSet`.
    """

    __slots__ = ("costs", "starts", "ends", "neighbors", "hi")

    def __init__(self, costs, starts, ends, neighbors, hi):
        self.costs = costs          #: (C,) float64, ascending
        self.starts = starts        #: (C,) float64 component starts
        self.ends = ends            #: (C,) float64 component ends
        self.neighbors = neighbors  #: list of C neighbor labels
        #: (C,) int64 — per row ``j``, the count of canonical rows with
        #: cost ≤ ``costs[j]`` (``bisect_right`` of each cost in the cost
        #: array); the DCS ``round_down`` boundary used for coverage counts
        self.hi = hi

    def __len__(self) -> int:
        return len(self.neighbors)


def node_components(tveg: TVEG, node: Node) -> NodeComponents:
    """The node's canonical contact-component arrays (cached on the TVEG).

    Costs are evaluated once per component at its start instant through
    :meth:`~repro.tveg.graph.TVEG.contact_cost`, which shares the TVEG's
    per-contact cost cache with the sweep and point-query paths — so every
    cost here is bit-for-bit the float the stdlib path computes.  Requires
    ``tveg.cost_cacheable`` (checked by the caller); components with a
    non-finite cost are dropped, matching the stdlib entry filter.
    """
    cache = tveg.compute_cache()
    key = ("components", node)
    hit = cache.get(key)
    if hit is not None:
        return hit
    tvg = tveg.tvg
    raw: List[Tuple[float, str, float, float, Node]] = []
    for other in tvg.incident(node):
        for s, e in tvg.adjacency_set(node, other).pairs:
            # Erosion preserves component starts, so ``s`` is also the
            # presence-interval start — the shared cost-cache key.
            c = tveg.contact_cost(node, other, s, s)
            if math.isfinite(c):
                raw.append((c, repr(other), s, e, other))
    raw.sort(key=lambda item: (item[0], item[1]))
    costs = np.array([r[0] for r in raw], dtype=np.float64)
    comp = NodeComponents(
        costs=costs,
        starts=np.array([r[2] for r in raw], dtype=np.float64),
        ends=np.array([r[3] for r in raw], dtype=np.float64),
        neighbors=[r[4] for r in raw],
        hi=np.searchsorted(costs, costs, side="right").astype(np.int64),
    )
    cache[key] = comp
    return comp


class LazyAuxNodes(Sequence):
    """The auxiliary node-id → tuple mapping, materialized on demand.

    The numpy build knows every transmission node as three flat arrays
    ``(owner, point, level)``; creating millions of ``("tx", node, l, k)``
    tuples eagerly would cost more than the rest of the build combined.
    The Steiner solver only ever decodes the handful of ids that end up on
    tree edges, so this sequence builds each tuple at access time instead.
    State-node tuples (few) are materialized eagerly.
    """

    __slots__ = ("_state", "_labels", "_tx_owner", "_tx_l", "_tx_k")

    def __init__(self, state_nodes, labels, tx_owner, tx_l, tx_k):
        self._state = state_nodes
        self._labels = labels
        self._tx_owner = tx_owner
        self._tx_l = tx_l
        self._tx_k = tx_k

    def __len__(self) -> int:
        return len(self._state) + len(self._tx_l)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self)))]
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(i)
        s = len(self._state)
        if i < s:
            return self._state[i]
        j = i - s
        return tx_node(
            self._labels[self._tx_owner[j]],
            int(self._tx_l[j]),
            int(self._tx_k[j]),
        )


@dataclass
class NumpyAuxGraph(CompactAuxGraph):
    """A :class:`CompactAuxGraph` whose big sequences are numpy arrays.

    Structurally identical to the stdlib-built graph; the only behavioral
    addition is an arithmetic :meth:`index_of` — node ids are recovered
    from ``state_base`` and the flat transmission arrays instead of a
    materialized ``{tuple: id}`` dict, because hashing millions of lazy
    tuples would cost more than the vectorized build saved.
    """

    #: per-graph-node slice bounds into the flat tx arrays (len = nodes+1)
    tx_offsets: Optional["np.ndarray"] = field(default=None, repr=False)
    _label_index: Optional[Dict[Node, int]] = field(default=None, repr=False)
    #: total DCS levels, counted during the build (same sum the base-class
    #: property would take over every cost set)
    dcs_level_count: Optional[int] = field(default=None, repr=False)

    @property
    def dcs_levels(self) -> int:
        if self.dcs_level_count is not None:
            return self.dcs_level_count
        return CompactAuxGraph.dcs_levels.fget(self)

    def index_of(self, aux: AuxNode) -> int:
        kind = aux[0] if isinstance(aux, tuple) and aux else None
        if kind == "state" and len(aux) == 3:
            base = self.state_base.get(aux[1])
            if base is not None and 0 <= aux[2] < len(
                self.dts.points(aux[1])
            ):
                return base + aux[2]
        elif kind == "tx" and len(aux) == 4:
            ni = self._label_index.get(aux[1])
            if ni is not None:
                nodes: LazyAuxNodes = self.aux_nodes
                lo, hi = int(self.tx_offsets[ni]), int(self.tx_offsets[ni + 1])
                tx_l, tx_k = nodes._tx_l, nodes._tx_k
                # tx nodes are point-major, level-minor within each node
                a = lo + int(np.searchsorted(tx_l[lo:hi], aux[2], "left"))
                b = lo + int(np.searchsorted(tx_l[lo:hi], aux[2], "right"))
                j = a + int(np.searchsorted(tx_k[a:b], aux[3], "left"))
                if j < b and tx_k[j] == aux[3]:
                    return len(nodes._state) + j
        raise KeyError(aux)

    def edge_weight(self, u: AuxNode, v: AuxNode) -> float:
        ui, vi = self.index_of(u), self.index_of(v)
        lo, hi = int(self.indptr[ui]), int(self.indptr[ui + 1])
        hits = np.nonzero(self.targets[lo:hi] == vi)[0]
        if len(hits):
            return float(self.weights[lo + int(hits[0])])
        raise GraphModelError(f"no auxiliary edge {u!r} → {v!r}")

    def tree_cost(self, edges) -> float:
        """Summed edge weights without per-edge id recovery.

        Only state → transmission edges carry weight, and that weight is
        by construction the cost level the transmission node's ``(l, k)``
        indexes in the owner's cost set — the same float
        ``edge_weight`` would return.  Adding 0.0 for the waiting and
        coverage edges is exact, so skipping them reproduces the
        generic path's :func:`math.fsum` bit for bit; fsum's exact
        rounding also makes the result independent of the set's
        hash-seed-dependent iteration order.
        """
        cost_sets = self.cost_sets
        weights = [
            cost_sets[(v[1], v[2])].entries[v[3]][0]
            for _u, v in edges
            if v[0] == "tx"
        ]
        return float(math.fsum(weights))


@obs.span("auxgraph.numpy_build")
def build_numpy_aux_graph(
    tveg: TVEG,
    source: Node,
    deadline: Optional[float] = None,
    dts: Optional[DiscreteTimeSet] = None,
    targets: Optional[Tuple[Node, ...]] = None,
) -> CompactAuxGraph:
    """Build the Section VI-A auxiliary graph with batched array ops.

    Produces a :class:`~repro.auxgraph.compact.CompactAuxGraph` whose node
    numbering, CSR edge order, weights, and ``cost_sets`` are identical to
    :func:`~repro.auxgraph.compact.build_compact_aux_graph`'s — verified
    element-for-element by the compute-parity suite.  When the TVEG cannot
    certify per-contact-constant costs the stdlib builder is used instead
    (the batched cost evaluation could not guarantee bit-identity there).
    """
    if not tveg.cost_cacheable:
        return build_compact_aux_graph(tveg, source, deadline, dts,
                                       targets=targets)
    if not tveg.tvg.has_node(source):
        raise GraphModelError(f"unknown source {source!r}")
    if targets is not None:
        unknown = [t for t in targets if not tveg.tvg.has_node(t)]
        if unknown:
            raise GraphModelError(f"unknown targets {unknown!r}")
    end = tveg.horizon if deadline is None else min(tveg.horizon, deadline)
    d = dts if dts is not None else build_dts(tveg.tvg, end)
    tau = tveg.tau

    labels = list(tveg.nodes)
    pts_of: Dict[Node, np.ndarray] = {}
    raw_pts: Dict[Node, Tuple[float, ...]] = {}
    state_base: Dict[Node, int] = {}
    state_nodes: List[AuxNode] = []
    for node in labels:
        pts = d.points(node)
        raw_pts[node] = pts
        pts_of[node] = np.asarray(pts, dtype=np.float64)
        state_base[node] = len(state_nodes)
        state_nodes.extend(state_node(node, l) for l in range(len(pts)))
    S = len(state_nodes)

    state_cnt_parts: List[np.ndarray] = []
    state_tgt_parts: List[np.ndarray] = []
    state_w_parts: List[np.ndarray] = []
    state_time_parts: List[np.ndarray] = []
    tx_cnt_parts: List[np.ndarray] = []
    tx_tgt_parts: List[np.ndarray] = []
    tx_time_parts: List[np.ndarray] = []
    tx_owner_parts: List[np.ndarray] = []
    tx_l_parts: List[np.ndarray] = []
    tx_k_parts: List[np.ndarray] = []
    tx_w_by_state: Dict[int, np.ndarray] = {}
    cost_sets: Dict[Tuple[Node, int], DiscreteCostSet] = {}
    tx_total = 0
    dcs_level_total = 0

    for node_idx, node in enumerate(labels):
        pts = pts_of[node]
        P = len(pts)
        base = state_base[node]
        state_time_parts.append(pts)
        comp = node_components(tveg, node)
        C = len(comp)

        wait_rows = np.arange(max(P - 1, 0), dtype=np.int64)
        wait_tgts = base + wait_rows + 1

        a = (
            np.searchsorted(pts, comp.starts, side="left")
            if C
            else np.zeros(0, dtype=np.int64)
        )
        b = (
            np.searchsorted(pts, comp.ends, side="left")
            if C
            else np.zeros(0, dtype=np.int64)
        )
        # Active cells of this node, sparsely: component j is adjacent at
        # point l  ⇔  a[j] <= l < b[j], so each component contributes one
        # contiguous run of points.  Everything below works on the ~8 % of
        # (point, component) cells that are actually active instead of
        # cumsum/mask passes over the dense matrix.
        lens = np.maximum(b - a, 0)
        tot = int(lens.sum())

        if tot == 0 or P == 0:
            state_cnt_parts.append(np.bincount(wait_rows, minlength=P)
                                   .astype(np.int64))
            state_tgt_parts.append(wait_tgts)
            state_w_parts.append(np.zeros(len(wait_rows)))
            continue

        # Cells in component-major order: j_rep[i], l_rep[i] enumerate
        # each component's run of active points.
        j_rep = np.repeat(np.arange(C, dtype=np.int64), lens)
        run_off = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(lens)]
        )
        l_rep = (
            np.arange(tot, dtype=np.int64)
            - np.repeat(run_off[:-1], lens)
            + np.repeat(a, lens)
        )

        # Reception state id and validity per active cell: the neighbor's
        # state at exactly t + tau, invalid when its DTS lacks that point
        # (the provably-useless coverage the stdlib builder drops too).
        # Exact float equality, matching auxgraph.build._point_index.
        ok_parts: List[np.ndarray] = []
        rs_parts: List[np.ndarray] = []
        for j in range(C):
            lo, hi = int(a[j]), int(b[j])
            if hi <= lo:
                continue
            npts = pts_of[comp.neighbors[j]]
            t_recv = pts[lo:hi] + tau
            f = np.searchsorted(npts, t_recv, side="left")
            ok = f < len(npts)
            f_safe = np.where(ok, f, 0)
            ok &= npts[f_safe] == t_recv
            ok_parts.append(ok)
            rs_parts.append(state_base[comp.neighbors[j]] + f_safe)

        # Point-major, canonical-minor cell order — the stdlib creation
        # order.  A stable sort on l alone suffices: within a point, the
        # component-major order already lists canonical indices ascending.
        perm = np.argsort(l_rep, kind="stable")
        l_s = l_rep[perm]
        j_s = j_rep[perm]
        ok_s = np.concatenate(ok_parts)[perm]
        rs_s = np.concatenate(rs_parts)[perm]

        # cnt for cell (l, j) = |{valid receivers at l with canonical
        # index < hi[j]}| — the stdlib ``bisect_right(r_costs, w)``.  With
        # cells flattened to strictly increasing keys l·(C+1)+j, each
        # per-point prefix count is a searchsorted range query against the
        # valid subsequence (``hi >= 1`` always, so ``<= hi - 1``).
        vkey = (l_s * (C + 1) + j_s)[ok_s]
        row_key = l_s * (C + 1)
        vlo = np.searchsorted(vkey, row_key, side="left")
        cnt_s = (
            np.searchsorted(vkey, row_key + comp.hi[j_s] - 1, side="right")
            - vlo
        )

        # A transmission at pts[l] must complete by the deadline.
        can_tx = (pts + tau) <= end
        keep = cnt_s > 0 if can_tx.all() else (cnt_s > 0) & can_tx[l_s]

        # Transmission nodes in creation order: point-major, level-minor.
        l_arr = l_s[keep]
        j_arr = j_s[keep]
        E = len(l_arr)
        # k = rank of the cell among its point's active cells (exclusive
        # count of active components with smaller canonical index).
        # ``l_s`` is sorted, so each point's run start is read off the
        # run boundaries instead of a per-cell binary search.
        cell_pos = np.arange(tot, dtype=np.int64)
        run_change = np.flatnonzero(l_s[1:] != l_s[:-1]) + 1
        starts = np.concatenate([np.zeros(1, dtype=np.int64), run_change])
        run_counts = np.diff(np.concatenate([starts, [tot]]))
        row_start = np.repeat(starts, run_counts)
        k_arr = (cell_pos - row_start)[keep]
        w_arr = comp.costs[j_arr]
        cnt_arr = cnt_s[keep]
        ids = S + tx_total + np.arange(E, dtype=np.int64)
        tx_total += E

        # State rows: the waiting edge first, then this row's transmission
        # edges in creation order — the stdlib insertion order.
        rows = np.concatenate([wait_rows, l_arr])
        keys = np.concatenate(
            [np.full(len(wait_rows), -1, dtype=np.int64),
             np.arange(E, dtype=np.int64)]
        )
        tgts = np.concatenate([wait_tgts, ids])
        wgts = np.concatenate([np.zeros(len(wait_rows)), w_arr])
        order = np.lexsort((keys, rows))
        state_cnt_parts.append(np.bincount(rows, minlength=P)
                               .astype(np.int64))
        state_tgt_parts.append(tgts[order])
        state_w_parts.append(wgts[order])

        # Transmission rows: each level's coverage is the first
        # ``cnt`` valid receivers of its point, in canonical (DCS entry)
        # order — the valid subsequence is already point-major/canonical-
        # minor, and ``vlo`` marks each point's start in it, so one flat
        # indexing expression gathers every coverage list.
        vs = rs_s[ok_s]
        row_voff = vlo[keep]
        total_recv = int(cnt_arr.sum())
        excl = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(cnt_arr)]
        )[:-1]
        pos = np.arange(total_recv, dtype=np.int64) - np.repeat(excl, cnt_arr)
        tx_tgt_parts.append(vs[np.repeat(row_voff, cnt_arr) + pos])
        tx_cnt_parts.append(cnt_arr)
        tx_time_parts.append(pts[l_arr])
        tx_owner_parts.append(np.full(E, node_idx, dtype=np.int64))
        tx_l_parts.append(l_arr)
        tx_k_parts.append(k_arr)

        # Cost sets for the points that emitted a transmission node.  The
        # entries tuple only changes at component boundaries, so one tuple
        # is built per constant-active segment and shared (exactly the
        # sweep's event-free-gap reuse).
        # ``l_arr`` is sorted (point-major creation order), so dedup is a
        # neighbor comparison rather than a hash/sort pass.
        kept_cols = (
            l_arr[np.concatenate([[True], l_arr[1:] != l_arr[:-1]])]
            if E
            else l_arr
        )
        if len(kept_cols):
            boundaries = np.unique(np.concatenate(
                [np.clip(a, 0, P), np.clip(b, 0, P), [0, P]]
            ))
            seg = np.searchsorted(boundaries, kept_cols, side="right") - 1
            ent_cache: Dict[int, Tuple] = {}
            for l, s in zip(kept_cols.tolist(), seg.tolist()):
                ent = ent_cache.get(s)
                if ent is None:
                    js = np.flatnonzero((a <= l) & (l < b))
                    ent = tuple(
                        (float(comp.costs[j]), comp.neighbors[j])
                        for j in js.tolist()
                    )
                    ent_cache[s] = ent
                cost_sets[(node, l)] = DiscreteCostSet(
                    node=node, time=float(pts[l]), entries=ent
                )
                dcs_level_total += len(ent)

    counts = np.concatenate(
        state_cnt_parts + tx_cnt_parts
        if (state_cnt_parts or tx_cnt_parts)
        else [np.zeros(0, dtype=np.int64)]
    )
    indptr = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
    targets_arr = (
        np.concatenate(state_tgt_parts + tx_tgt_parts)
        if (state_tgt_parts or tx_tgt_parts)
        else np.zeros(0, dtype=np.int64)
    )
    weights_arr = (
        np.concatenate(
            state_w_parts + [np.zeros(int(c.sum())) for c in tx_cnt_parts]
        )
        if (state_w_parts or tx_cnt_parts)
        else np.zeros(0)
    )
    times = (
        np.concatenate(state_time_parts + tx_time_parts)
        if (state_time_parts or tx_time_parts)
        else np.zeros(0)
    )
    aux_nodes = LazyAuxNodes(
        state_nodes,
        labels,
        np.concatenate(tx_owner_parts) if tx_owner_parts
        else np.zeros(0, dtype=np.int64),
        np.concatenate(tx_l_parts) if tx_l_parts
        else np.zeros(0, dtype=np.int64),
        np.concatenate(tx_k_parts) if tx_k_parts
        else np.zeros(0, dtype=np.int64),
    )
    tx_counts = np.zeros(len(labels), dtype=np.int64)
    for part in tx_owner_parts:
        if len(part):
            tx_counts[int(part[0])] = len(part)
    tx_offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(tx_counts)]
    )

    wanted = (
        tuple(n for n in labels if n != source)
        if targets is None
        else tuple(n for n in targets if n != source)
    )
    obs.gauge("auxgraph.nodes", len(aux_nodes))
    obs.gauge("auxgraph.edges", len(targets_arr))
    obs.gauge("auxgraph.dcs_levels", dcs_level_total)
    obs.counter("auxgraph.numpy_builds")
    return NumpyAuxGraph(
        indptr=indptr,
        targets=targets_arr,
        weights=weights_arr,
        aux_nodes=aux_nodes,
        times=times,
        dts=d,
        source=source,
        root=state_node(source, 0),
        terminals=tuple(
            state_node(n, len(raw_pts[n]) - 1) for n in wanted
        ),
        root_index=state_base[source],
        terminal_indices=tuple(
            state_base[n] + len(raw_pts[n]) - 1 for n in wanted
        ),
        cost_sets=cost_sets,
        state_base=state_base,
        tx_offsets=tx_offsets,
        _label_index={n: i for i, n in enumerate(labels)},
        dcs_level_count=dcs_level_total,
    )


def greedy_incremental_dst_numpy(
    graph: CompactAuxGraph,
    root: AuxNode,
    terminals: Sequence[AuxNode],
    stats: Optional[Dict[str, int]] = None,
) -> Set[Edge]:
    """The incremental multi-source Dijkstra with batched row decoding.

    Identical search to :func:`~repro.steiner.dst.greedy_incremental_dst`
    on a :class:`~repro.auxgraph.compact.CompactAuxGraph` — same pop
    sequence, same ``expansions`` / ``grafts`` counters, same tree.  The
    auxiliary graph's rows are short (a state node links its waiting edge
    plus the point's transmission levels; a transmission node its covered
    receivers), so the win over the stdlib loop is not per-row
    vectorization — whose call overhead would dominate rows this size —
    but decoding each settled row from the CSR arrays in two bulk
    ``tolist`` calls and relaxing over native ints and floats, instead of
    per-element ``array`` indexing.  Float arithmetic, improvement
    checks, and heap pushes are element-for-element those of the stdlib
    solver, so the heap multiset — hence the pop order — matches bit for
    bit.

    The tree edges are decoded to tuple form at insertion, in graft order —
    downstream set-iteration order is part of the parity contract, so the
    result set must be built exactly the way the stdlib solver builds its
    own (same elements *and* same insertion history).
    """
    nodes = graph.aux_nodes
    indptr = np.asarray(graph.indptr, dtype=np.int64)
    tgt = np.asarray(graph.targets, dtype=np.int64)
    wts = np.asarray(graph.weights, dtype=np.float64)
    iptr = indptr.tolist()
    root_i = (
        graph.root_index if root == graph.root else graph.index_of(root)
    )
    if tuple(terminals) == graph.terminals:
        uncovered = set(graph.terminal_indices)
    else:
        uncovered = {graph.index_of(t) for t in terminals if t != root}
    uncovered.discard(root_i)

    n = len(nodes)
    INF = float("inf")
    dist = [INF] * n
    pred = [-1] * n
    in_tree = bytearray(n)
    tree_edges: Set[Edge] = set()

    heap: List[Tuple[float, int]] = []
    expansions = 0
    grafts = 0

    def enter_tree(i: int, parent: int) -> None:
        if in_tree[i]:
            return
        in_tree[i] = 1
        if parent >= 0:
            tree_edges.add((nodes[parent], nodes[i]))
        dist[i] = 0.0
        heapq.heappush(heap, (0.0, i))
        uncovered.discard(i)

    enter_tree(int(root_i), -1)

    heappop = heapq.heappop
    heappush = heapq.heappush
    while uncovered:
        target = -1
        while heap:
            dd, u = heappop(heap)
            if dd > dist[u]:
                continue  # stale entry
            expansions += 1
            if u in uncovered:
                target = u
                break
            lo, hi = iptr[u], iptr[u + 1]
            for v, w in zip(tgt[lo:hi].tolist(), wts[lo:hi].tolist()):
                nd = dd + w
                if nd < dist[v]:
                    dist[v] = nd
                    pred[v] = u
                    heappush(heap, (nd, v))
        if target < 0:
            first = nodes[next(iter(uncovered))]
            raise InfeasibleError(
                f"{len(uncovered)} terminal(s) unreachable from the tree "
                f"(first: {first!r})"
            )
        chain: List[int] = []
        v = int(target)
        while v >= 0 and not in_tree[v]:
            chain.append(v)
            v = pred[v]
        for i in reversed(chain):
            enter_tree(i, pred[i])
        grafts += 1
    if stats is not None:
        stats["expansions"] = stats.get("expansions", 0) + expansions
        stats["grafts"] = stats.get("grafts", 0) + grafts
    obs.counter("steiner.expansions", expansions)
    obs.counter("steiner.grafts", grafts)
    return tree_edges


# ----------------------------------------------------------------------
# batched DCS queries (searchsorted over per-set level arrays)
# ----------------------------------------------------------------------

def _level_array(dcs: DiscreteCostSet) -> "np.ndarray":
    """The cost-level array of one DCS, cached on the instance."""
    arr = dcs.__dict__.get("_level_array")
    if arr is None:
        arr = np.asarray(dcs.costs, dtype=np.float64)
        # frozen dataclass: cache through __dict__, never mutate fields
        dcs.__dict__["_level_array"] = arr
    return arr


def round_down_many(dcs: DiscreteCostSet, ws: Sequence[float]) -> List[float]:
    """``[dcs.round_down(w) for w in ws]`` as one ``searchsorted`` query."""
    from ..errors import ScheduleError

    levels = _level_array(dcs)
    qs = np.asarray(list(ws), dtype=np.float64)
    idx = np.searchsorted(levels, qs, side="right")
    if len(qs) and int(idx.min()) == 0:
        w = float(qs[int(np.argmin(idx))])
        raise ScheduleError(
            f"cost {w!r} is below the smallest DCS level of node "
            f"{dcs.node!r} at t={dcs.time!r}"
        )
    return [dcs.entries[i - 1][0] for i in idx.tolist()]


def level_index_many(dcs: DiscreteCostSet, ws: Sequence[float]) -> List[int]:
    """``[dcs.level_index(w) for w in ws]`` as one ``searchsorted`` query."""
    from ..errors import ScheduleError

    levels = _level_array(dcs)
    qs = np.asarray(list(ws), dtype=np.float64)
    idx = np.searchsorted(levels, qs, side="left")
    out: List[int] = []
    for w, k in zip(qs.tolist(), idx.tolist()):
        if k >= len(levels) or levels[k] != w:
            raise ScheduleError(
                f"{w!r} is not a DCS level of node {dcs.node!r}"
            )
        out.append(k)
    return out

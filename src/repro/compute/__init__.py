"""Compute-backend registry: pure-stdlib kernels vs array-native kernels.

The scheduler pipeline ships two interchangeable kernel sets for its hot
stages (timeline sweeps + DCS construction, the auxiliary-graph build, and
the greedy Steiner expansion):

* ``"python"`` — the pure-stdlib implementations.  Always available; the
  bit-for-bit parity oracle, exactly as ``backend="nx"`` is the oracle for
  the CSR auxiliary-graph representation.
* ``"numpy"`` — batched array implementations
  (:mod:`repro.compute.numpy_backend`).  Optional: selected only when
  numpy imports, and constructed to mirror the stdlib path *byte for
  byte* — same schedules, same work counters, same ``config_hash``.

``"auto"`` (the default everywhere a ``compute=`` parameter appears)
prefers ``"numpy"`` when importable and falls back to ``"python"``; the
``REPRO_COMPUTE`` environment variable overrides the auto choice, which is
how CI pins an explicitly numpy-free leg.  The chosen backend is a
performance knob, never part of a plan's identity: it does not enter
:func:`repro.api.plan_config` or the manifest ``config_hash``.

Names are normalized like scheduler names — case-insensitive, with
hyphens/underscores/spaces interchangeable — so ``"NumPy"`` and ``"np"``
resolve to ``"numpy"``.
"""

from __future__ import annotations

import os
from typing import Optional

from ..errors import SolverError

__all__ = [
    "COMPUTE_BACKENDS",
    "canonical_compute_name",
    "has_numpy",
    "resolve_compute",
]

#: accepted ``compute=`` spellings (canonical forms)
COMPUTE_BACKENDS = ("auto", "python", "numpy")

_ALIASES = {
    "np": "numpy",
    "vectorized": "numpy",
    "stdlib": "python",
    "pure": "python",
    "default": "auto",
}

#: environment variable overriding the ``"auto"`` resolution
COMPUTE_ENV_VAR = "REPRO_COMPUTE"

_HAS_NUMPY: Optional[bool] = None


def canonical_compute_name(name) -> str:
    """Resolve a compute-backend name or alias to its canonical form.

    ``None`` means ``"auto"``.  Spellings are case-insensitive and treat
    hyphens, underscores, and spaces interchangeably, mirroring
    :func:`repro.algorithms.base.canonical_scheduler_name`.  Raises
    :class:`~repro.errors.SolverError` listing the canonical names when
    nothing matches.
    """
    if name is None:
        return "auto"
    key = str(name).strip().lower()
    key = key.replace("_", "-").replace(" ", "-").replace("-", "")
    key = _ALIASES.get(key, key)
    if key in COMPUTE_BACKENDS:
        return key
    raise SolverError(
        f"unknown compute backend {name!r}; choose from "
        f"{', '.join(COMPUTE_BACKENDS)}"
    )


def has_numpy() -> bool:
    """True when numpy is importable (checked once, then cached)."""
    global _HAS_NUMPY
    if _HAS_NUMPY is None:
        try:
            import numpy  # noqa: F401

            _HAS_NUMPY = True
        except ImportError:
            _HAS_NUMPY = False
    return _HAS_NUMPY


def resolve_compute(name=None) -> str:
    """Resolve a compute spec to the backend that will actually run.

    ``None`` / ``"auto"`` consults the ``REPRO_COMPUTE`` environment
    variable first, then prefers ``"numpy"`` when importable and falls
    back to ``"python"``.  An explicit ``"numpy"`` request raises
    :class:`~repro.errors.SolverError` when numpy is missing (a silent
    fallback would misreport what was measured).
    """
    key = canonical_compute_name(name)
    if key == "auto":
        env = os.environ.get(COMPUTE_ENV_VAR, "").strip()
        if env:
            key = canonical_compute_name(env)
        if key == "auto":
            return "numpy" if has_numpy() else "python"
    if key == "numpy" and not has_numpy():
        raise SolverError(
            "compute='numpy' requested but numpy is not importable; "
            "install the optional extra (pip install repro[fast]) or use "
            "compute='auto'"
        )
    return key

"""Time partitions (Definition 5.1) and the combination operator (Eq. 8).

A *partition* of the time span ``T = [0, horizon]`` is a finite ordered
sequence of time points ``0 = t_0 < t_1 < ... < t_m = horizon``; its
*intervals* are the half-open ``[t_k, t_{k+1})``.  The paper combines
partitions by merging and re-sorting their point sets (Eq. 8); combination is
therefore associative, commutative, and idempotent — properties the test
suite verifies with hypothesis.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, List, Sequence, Tuple

from ..errors import PartitionError
from .intervals import Interval

__all__ = ["Partition", "combine"]

_EPS = 1e-12


class Partition:
    """An ordered sequence of time points partitioning ``[start, end]``.

    The first point is the start of the span and the last is its end
    (Definition 5.1 requires ``t_0 = 0`` and ``t_m = T``; we generalize to an
    arbitrary span so sub-horizons can be partitioned too).
    """

    __slots__ = ("_points",)

    def __init__(self, points: Iterable[float]) -> None:
        pts = sorted(set(float(p) for p in points))
        if len(pts) < 2:
            raise PartitionError("a partition needs at least two time points")
        self._points = tuple(pts)

    @classmethod
    def trivial(cls, start: float, end: float) -> "Partition":
        """The two-point partition ``{start, end}`` (a single interval)."""
        if start >= end:
            raise PartitionError("trivial partition requires start < end")
        return cls((start, end))

    @classmethod
    def from_boundaries(
        cls, boundaries: Iterable[float], start: float, end: float
    ) -> "Partition":
        """Partition of ``[start, end]`` refined by any boundaries inside it.

        Boundary points outside ``[start, end]`` are ignored; the span
        endpoints are always included.
        """
        inner = [b for b in boundaries if start < b < end]
        return cls([start, end, *inner])

    # ------------------------------------------------------------------
    @property
    def points(self) -> Tuple[float, ...]:
        return self._points

    @property
    def start(self) -> float:
        return self._points[0]

    @property
    def end(self) -> float:
        return self._points[-1]

    @property
    def num_intervals(self) -> int:
        return len(self._points) - 1

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[float]:
        return iter(self._points)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self._points == other._points

    def __hash__(self) -> int:
        return hash(self._points)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if len(self._points) <= 8:
            body = ", ".join(f"{p:g}" for p in self._points)
        else:
            head = ", ".join(f"{p:g}" for p in self._points[:3])
            tail = ", ".join(f"{p:g}" for p in self._points[-3:])
            body = f"{head}, ..., {tail}"
        return f"Partition({body})"

    # ------------------------------------------------------------------
    def intervals(self) -> Tuple[Interval, ...]:
        """The half-open intervals ``[t_k, t_{k+1})`` of the partition."""
        return tuple(
            Interval(self._points[k], self._points[k + 1])
            for k in range(len(self._points) - 1)
        )

    def interval_of(self, t: float) -> Interval:
        """The partition interval containing ``t``.

        The final point ``t_m`` is assigned to the last interval so every
        point of the closed span has a home.
        """
        if not (self.start <= t <= self.end):
            raise PartitionError(
                f"time {t!r} outside partition span [{self.start}, {self.end}]"
            )
        idx = bisect_right(self._points, t) - 1
        idx = min(idx, len(self._points) - 2)
        return Interval(self._points[idx], self._points[idx + 1])

    def floor_point(self, t: float) -> float:
        """The largest partition point ``<= t`` (the paper's earliest
        transmission target ``t_s`` within ``t``'s interval, Prop. 5.1)."""
        return self.interval_of(t).start

    def index_of_point(self, t: float) -> int:
        """Index of an exact partition point; raises if ``t`` is not one."""
        idx = bisect_right(self._points, t) - 1
        if idx >= 0 and abs(self._points[idx] - t) <= _EPS:
            return idx
        raise PartitionError(f"time {t!r} is not a partition point")

    def has_point(self, t: float, tol: float = _EPS) -> bool:
        idx = bisect_right(self._points, t) - 1
        for j in (idx, idx + 1):
            if 0 <= j < len(self._points) and abs(self._points[j] - t) <= tol:
                return True
        return False

    # ------------------------------------------------------------------
    def combine(self, other: "Partition") -> "Partition":
        """The combination ``P₁ ∪ P₂`` of two partitions (Eq. 8).

        Both partitions must share the same span; the result contains the
        ordered union of their point sets.
        """
        if (self.start, self.end) != (other.start, other.end):
            raise PartitionError(
                "cannot combine partitions with different spans: "
                f"[{self.start}, {self.end}] vs [{other.start}, {other.end}]"
            )
        return Partition(self._points + other._points)

    def __or__(self, other: "Partition") -> "Partition":
        return self.combine(other)

    def refine_with(self, extra_points: Iterable[float]) -> "Partition":
        """A new partition including any ``extra_points`` inside the span."""
        inner = [p for p in extra_points if self.start < p < self.end]
        if not inner:
            return self
        return Partition(self._points + tuple(inner))


def combine(partitions: Sequence[Partition]) -> Partition:
    """Combination of arbitrarily many partitions (Eq. 8 generalized).

    All partitions must share the same span.
    """
    if not partitions:
        raise PartitionError("combine() requires at least one partition")
    span = (partitions[0].start, partitions[0].end)
    points: List[float] = []
    for p in partitions:
        if (p.start, p.end) != span:
            raise PartitionError("all partitions must share the same span")
        points.extend(p.points)
    return Partition(points)

"""Unit conversions used throughout the physical-layer models.

The paper quotes its decoding threshold in dB (``γ_th = 25.9 dB``) and its
noise power density in W/Hz; internally everything is linear SI, so these
helpers are the single place where dB enters or leaves the library.
"""

from __future__ import annotations

import math

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
]


def db_to_linear(db: float) -> float:
    """Convert a power ratio in decibels to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises :class:`ValueError` for non-positive ratios, which have no dB
    representation.
    """
    if ratio <= 0:
        raise ValueError(f"cannot express non-positive ratio {ratio!r} in dB")
    return 10.0 * math.log10(ratio)


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts."""
    return 10.0 ** ((dbm - 30.0) / 10.0)


def watts_to_dbm(watts: float) -> float:
    """Convert a power level in watts to dBm."""
    if watts <= 0:
        raise ValueError(f"cannot express non-positive power {watts!r} in dBm")
    return 10.0 * math.log10(watts) + 30.0

"""Seeded random-number helpers.

Every stochastic component of the library (trace generators, mobility
models, fading simulator, RAND schedulers) takes a ``seed`` or a
``numpy.random.Generator``; this module centralizes the coercion so results
are reproducible end-to-end from a single integer.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["as_generator", "spawn"]

SeedLike = Union[None, int, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh OS-entropy generator; an ``int`` yields a
    deterministic PCG64 stream; an existing generator passes through.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list:
    """Derive ``n`` independent child generators from ``rng``.

    Used to give each Monte-Carlo trial its own stream so trials are
    reproducible independently of execution order.
    """
    return [np.random.default_rng(s) for s in rng.integers(0, 2**63 - 1, size=n)]

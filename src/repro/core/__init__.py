"""Core primitives: interval algebra, time partitions, units, RNG plumbing."""

from .intervals import Interval, IntervalSet, merge_all
from .partitions import Partition, combine
from .rng import as_generator, spawn
from .units import db_to_linear, dbm_to_watts, linear_to_db, watts_to_dbm

__all__ = [
    "Interval",
    "IntervalSet",
    "merge_all",
    "Partition",
    "combine",
    "as_generator",
    "spawn",
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
]

"""Half-open interval algebra on the real line.

This module is the substrate for every temporal object in the library:
presence functions of time-varying graphs (Section III-A of the paper),
adjacent/status partitions (Section V), and contact traces.  Intervals are
half-open ``[start, end)`` which makes unions of adjacent intervals exact and
lets a partition of ``[0, T)`` (Definition 5.1) be expressed without overlap.

Two classes are provided:

* :class:`Interval` — an immutable half-open interval ``[start, end)``.
* :class:`IntervalSet` — a normalized (sorted, disjoint, non-adjacent) union
  of intervals supporting the usual set algebra, membership queries, and
  boundary extraction.

The implementation keeps interval sets as plain tuples of floats and uses
binary search (``bisect``) for point queries, so membership is ``O(log k)``
and the algebra is ``O(k)`` in the number of component intervals — fast
enough that presence queries never show up in profiles (the guide's rule:
measure first; this module is dominated by the Steiner search anyway).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from ..errors import IntervalError

__all__ = ["Interval", "IntervalSet"]


@dataclass(frozen=True, order=True)
class Interval:
    """An immutable half-open interval ``[start, end)`` with ``start <= end``.

    Degenerate intervals (``start == end``) are permitted as values but are
    treated as empty by all the algebra below.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if math.isnan(self.start) or math.isnan(self.end):
            raise IntervalError("interval endpoints must not be NaN")
        if self.start > self.end:
            raise IntervalError(
                f"interval start {self.start!r} exceeds end {self.end!r}"
            )

    @property
    def empty(self) -> bool:
        """True iff the interval contains no points."""
        return self.start >= self.end

    @property
    def length(self) -> float:
        """Lebesgue measure of the interval."""
        return max(0.0, self.end - self.start)

    def __contains__(self, t: float) -> bool:
        return self.start <= t < self.end

    def contains_interval(self, other: "Interval") -> bool:
        """True iff ``other`` (non-empty) lies entirely within this interval."""
        if other.empty:
            return True
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """True iff the two intervals share at least one point."""
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "Interval") -> "Interval":
        """The (possibly empty) intersection of two intervals."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo >= hi:
            return Interval(lo, lo)
        return Interval(lo, hi)

    def shift(self, delta: float) -> "Interval":
        """The interval translated by ``delta``."""
        return Interval(self.start + delta, self.end + delta)

    def clamp(self, lo: float, hi: float) -> "Interval":
        """The part of the interval inside ``[lo, hi)``."""
        return self.intersection(Interval(lo, hi))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start:g}, {self.end:g})"


def _normalize(pairs: Iterable[Tuple[float, float]]) -> Tuple[Tuple[float, float], ...]:
    """Sort, drop empties, and merge overlapping/adjacent half-open pairs."""
    cleaned = sorted((s, e) for s, e in pairs if s < e)
    merged: List[Tuple[float, float]] = []
    for s, e in cleaned:
        if merged and s <= merged[-1][1]:
            if e > merged[-1][1]:
                merged[-1] = (merged[-1][0], e)
        else:
            merged.append((s, e))
    return tuple(merged)


class IntervalSet:
    """A normalized finite union of half-open intervals.

    Invariants (maintained by construction): components are non-empty,
    sorted by start, pairwise disjoint, and never adjacent (an adjacent pair
    ``[a,b) ∪ [b,c)`` is stored merged as ``[a,c)``).

    Instances are immutable; all algebra returns new sets.
    """

    __slots__ = ("_pairs", "_starts")

    def __init__(self, intervals: Iterable = ()) -> None:
        pairs: List[Tuple[float, float]] = []
        for item in intervals:
            if isinstance(item, Interval):
                pairs.append((item.start, item.end))
            else:
                s, e = item
                if s > e:
                    raise IntervalError(f"interval start {s!r} exceeds end {e!r}")
                pairs.append((float(s), float(e)))
        self._pairs = _normalize(pairs)
        self._starts = [p[0] for p in self._pairs]

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls(())

    @classmethod
    def point_free_span(cls, start: float, end: float) -> "IntervalSet":
        """The single interval ``[start, end)``."""
        return cls(((start, end),))

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[float, float]]) -> "IntervalSet":
        return cls(pairs)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def intervals(self) -> Tuple[Interval, ...]:
        return tuple(Interval(s, e) for s, e in self._pairs)

    @property
    def pairs(self) -> Tuple[Tuple[float, float], ...]:
        return self._pairs

    @property
    def is_empty(self) -> bool:
        return not self._pairs

    @property
    def measure(self) -> float:
        """Total Lebesgue measure of the set."""
        return sum(e - s for s, e in self._pairs)

    @property
    def span(self) -> Interval:
        """Smallest interval containing the whole set (empty set → [0,0))."""
        if not self._pairs:
            return Interval(0.0, 0.0)
        return Interval(self._pairs[0][0], self._pairs[-1][1])

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    def __bool__(self) -> bool:
        return bool(self._pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._pairs == other._pairs

    def __hash__(self) -> int:
        return hash(self._pairs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = " ∪ ".join(f"[{s:g},{e:g})" for s, e in self._pairs) or "∅"
        return f"IntervalSet({body})"

    # ------------------------------------------------------------------
    # point / interval queries
    # ------------------------------------------------------------------
    def __contains__(self, t: float) -> bool:
        return self.contains_point(t)

    def contains_point(self, t: float) -> bool:
        """O(log k) membership test for a single time point."""
        idx = bisect_right(self._starts, t) - 1
        if idx < 0:
            return False
        s, e = self._pairs[idx]
        return s <= t < e

    def covers(self, start: float, end: float) -> bool:
        """True iff the whole CLOSED interval ``[start, end]`` is contained.

        This is the paper's ``ρ_τ`` requirement — presence at every
        ``t' ∈ [t, t + τ]`` — so with half-open components the query must end
        strictly inside one (``end < e``), which keeps ``covers`` exactly
        consistent with :meth:`erode`: ``covers(t, t+τ) ⟺ erode(τ) ∋ t``.
        A degenerate query (``start == end``) reduces to point membership.
        """
        if start > end:
            raise IntervalError("covers() requires start <= end")
        if start == end:
            return self.contains_point(start)
        idx = bisect_right(self._starts, start) - 1
        if idx < 0:
            return False
        s, e = self._pairs[idx]
        return s <= start and end < e

    def interval_at(self, t: float) -> Interval:
        """The maximal component interval containing ``t``.

        Raises :class:`IntervalError` if ``t`` is not in the set.
        """
        idx = bisect_right(self._starts, t) - 1
        if idx >= 0:
            s, e = self._pairs[idx]
            if s <= t < e:
                return Interval(s, e)
        raise IntervalError(f"time {t!r} is not in the interval set")

    def next_start_after(self, t: float) -> float:
        """The smallest component start strictly greater than ``t``.

        Returns ``math.inf`` when no component starts after ``t``.  Used by
        schedulers to skip to the next contact opportunity.
        """
        idx = bisect_right(self._starts, t)
        if idx < len(self._starts):
            return self._starts[idx]
        return math.inf

    # ------------------------------------------------------------------
    # set algebra
    # ------------------------------------------------------------------
    def union(self, other: "IntervalSet") -> "IntervalSet":
        out = IntervalSet.__new__(IntervalSet)
        out._pairs = _normalize(self._pairs + other._pairs)
        out._starts = [p[0] for p in out._pairs]
        return out

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        result: List[Tuple[float, float]] = []
        i = j = 0
        a, b = self._pairs, other._pairs
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo < hi:
                result.append((lo, hi))
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        out = IntervalSet.__new__(IntervalSet)
        out._pairs = tuple(result)
        out._starts = [p[0] for p in result]
        return out

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        return self.intersection(other.complement(*self._span_bounds()))

    def complement(self, lo: float, hi: float) -> "IntervalSet":
        """The complement of the set within ``[lo, hi)``."""
        if lo > hi:
            raise IntervalError("complement() requires lo <= hi")
        result: List[Tuple[float, float]] = []
        cursor = lo
        for s, e in self._pairs:
            if e <= lo:
                continue
            if s >= hi:
                break
            s_c, e_c = max(s, lo), min(e, hi)
            if cursor < s_c:
                result.append((cursor, s_c))
            cursor = max(cursor, e_c)
        if cursor < hi:
            result.append((cursor, hi))
        out = IntervalSet.__new__(IntervalSet)
        out._pairs = tuple(p for p in result if p[0] < p[1])
        out._starts = [p[0] for p in out._pairs]
        return out

    def _span_bounds(self) -> Tuple[float, float]:
        if not self._pairs:
            return (0.0, 0.0)
        return (self._pairs[0][0], self._pairs[-1][1])

    def __or__(self, other: "IntervalSet") -> "IntervalSet":
        return self.union(other)

    def __and__(self, other: "IntervalSet") -> "IntervalSet":
        return self.intersection(other)

    def __sub__(self, other: "IntervalSet") -> "IntervalSet":
        return self.difference(other)

    # ------------------------------------------------------------------
    # geometric transforms
    # ------------------------------------------------------------------
    def shift(self, delta: float) -> "IntervalSet":
        return IntervalSet((s + delta, e + delta) for s, e in self._pairs)

    def clamp(self, lo: float, hi: float) -> "IntervalSet":
        """Restrict the set to ``[lo, hi)``."""
        return self.intersection(IntervalSet(((lo, hi),)))

    def erode(self, tau: float) -> "IntervalSet":
        """Shrink every component to starts whose ``τ``-window stays inside.

        ``erode(τ)`` maps each component ``[s, e)`` to ``[s, e − τ)``: the set
        of times ``t`` with ``[t, t + τ] ⊆ [s, e]``.  This is exactly the
        paper's ``ρ_τ`` operator (Section IV): a transmission started at ``t``
        completes iff the link is present throughout ``[t, t + τ]``.
        """
        if tau < 0:
            raise IntervalError("erode() requires tau >= 0")
        if tau == 0:
            return self
        return IntervalSet((s, e - tau) for s, e in self._pairs if e - tau > s)

    # ------------------------------------------------------------------
    # boundary extraction (feeds partitions, Section V)
    # ------------------------------------------------------------------
    def boundaries(self) -> Tuple[float, ...]:
        """All component endpoints, sorted ascending, deduplicated."""
        points: List[float] = []
        for s, e in self._pairs:
            points.append(s)
            points.append(e)
        return tuple(sorted(set(points)))

    def boundaries_within(self, lo: float, hi: float) -> Tuple[float, ...]:
        """Boundary points falling inside ``[lo, hi]``."""
        return tuple(p for p in self.boundaries() if lo <= p <= hi)


def merge_all(sets: Sequence[IntervalSet]) -> IntervalSet:
    """Union of an arbitrary collection of interval sets."""
    pairs: List[Tuple[float, float]] = []
    for s in sets:
        pairs.extend(s.pairs)
    out = IntervalSet.__new__(IntervalSet)
    out._pairs = _normalize(pairs)
    out._starts = [p[0] for p in out._pairs]
    return out

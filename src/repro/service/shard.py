"""Multi-process planning shards: worker processes behind duplex pipes.

One process caps this service twice over: the GIL serializes every
scheduler's pure-Python work, and a single :class:`~repro.service.batcher.
Batcher` flush thread is one queue for all traffic.  A
:class:`ShardPool` runs N worker processes instead — each owns a full
:class:`~repro.service.server.PlanningService` (its own hot plan-cache
memory tier, shared-TVEG registry, and batcher) — and routes every
request through a :class:`~repro.service.router.HashRing` keyed on the
request's content address, so repeat configurations always land where
the live caches are warm.

Transport is deliberately stdlib-minimal: one duplex
:func:`multiprocessing.Pipe` per shard carrying small dicts.  The parent
side (:class:`ShardHandle`) tags each request with a sequence id,
registers a :class:`~concurrent.futures.Future`, and a reader thread
resolves futures as responses arrive — requests to one shard pipeline
freely and complete out of order.  The child (:func:`_shard_main`)
dispatches onto a thread pool so slow plans don't head-of-line-block
metrics probes or cache hits behind them.

Two tiers stay shared across the pool:

* the **disk cache**: every shard's :class:`~repro.service.cache.
  PlanCache` points at the same ``cache_dir`` — the atomic-rename write
  layout is already multi-writer-safe, so a plan computed on shard 2
  replays from disk on shard 5;
* **failure semantics**: workers run requests through
  :func:`~repro.service.server.execute_request`, shipping
  ``(status, doc)`` back as plain data, so an error surfaces with the
  same HTTP mapping a single-process server would give it.

Backpressure is per shard: each handle bounds its in-flight window and
rejects past it with :class:`~repro.errors.ServiceOverloaded` (HTTP 429)
— one hot shard sheds load while its neighbours keep serving.  Graceful
drain (:meth:`ShardPool.drain`) stops admission, waits for in-flight
work, then asks each worker to flush stats and exit.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .. import obs
from ..errors import ServiceOverloaded
from ..obs.histogram import MetricsRegistry
from ..parallel import mp_context
from ..traces.model import ContactTrace
from .cache import PlanCache
from .router import HashRing, routing_key
from .server import PlanningService, execute_request

__all__ = ["ShardHandle", "ShardPool"]

#: shard-local request methods a worker answers without planning
_CONTROL_METHODS = ("metrics", "healthz", "cache_stats", "warm")


# ----------------------------------------------------------------------
# child side
# ----------------------------------------------------------------------


def _shard_main(
    shard_id: int,
    conn,
    traces: Dict[str, ContactTrace],
    cache_kwargs: Dict[str, Any],
    service_kwargs: Dict[str, Any],
    request_threads: int,
    ledger: bool = False,
) -> None:
    """Worker-process entry point: serve one pipe until told to stop.

    Runs in the child.  Shutdown is cooperative — a ``{"method":
    "shutdown"}`` message (or the pipe closing) ends the loop; SIGINT and
    SIGTERM are ignored here because the parent owns lifecycle decisions
    and a forked child shares the terminal's signal delivery.

    ``ledger=True`` (set when the parent's ledger is recording) installs a
    *fresh* recording ledger in this process — never the fork-inherited
    copy, whose pre-fork events would duplicate the parent's — and the
    final drain handshake ships everything it recorded back so the parent
    ledger ends up with one attributable stream.  Either way the process
    declares its shard identity, so every worker-side event carries
    ``shard_id``.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    obs.set_shard_id(shard_id)
    obs.set_ledger(obs.Ledger() if ledger else None)
    service = PlanningService(
        traces, cache=PlanCache(**cache_kwargs), **service_kwargs
    )
    pool = ThreadPoolExecutor(
        max_workers=max(1, request_threads),
        thread_name_prefix=f"repro-shard{shard_id}",
    )
    send_lock = threading.Lock()

    def _execute_plan(
        msg: Dict[str, Any], method: str, kwargs: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        # The pipe message carries the edge-minted request id; re-enter its
        # scope on this worker thread so the plan's cache/batch/ledger
        # events stay attributable across the process boundary.
        rid = msg.get("request_id")
        if rid:
            with obs.request_context(rid):
                return execute_request(service, method, kwargs)
        return execute_request(service, method, kwargs)

    def answer(msg: Dict[str, Any]) -> None:
        method = msg.get("method")
        kwargs = msg.get("kwargs") or {}
        try:
            if method in ("plan", "plan_many"):
                status, doc = _execute_plan(msg, method, kwargs)
            elif method == "metrics":
                doc = service.metrics()
                doc["shard"] = shard_id
                doc["pid"] = os.getpid()
                status = 200
            elif method == "healthz":
                doc = service.healthz()
                doc["shard"] = shard_id
                status = 200
            elif method == "cache_stats":
                status, doc = 200, service.cache.stats()
            elif method == "warm":
                status, doc = 200, service.warm(kwargs.get("configs") or [])
            else:
                status, doc = 500, {"error": f"unknown shard method {method!r}"}
        except BaseException as exc:  # a worker loop must never die silently
            status, doc = 500, {
                "error": f"shard {shard_id} internal error: "
                f"{type(exc).__name__}: {exc}"
            }
        with send_lock:
            try:
                conn.send({"id": msg.get("id"), "status": status, "doc": doc})
            except (BrokenPipeError, OSError):
                pass  # parent is gone; nothing left to tell

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if not isinstance(msg, dict) or msg.get("method") == "shutdown":
                shutdown_id = msg.get("id") if isinstance(msg, dict) else None
                pool.shutdown(wait=True)  # finish + answer in-flight work
                service.close()
                final = service.metrics()
                final["shard"] = shard_id
                led = obs.get_ledger()
                if led.enabled:
                    # Ship everything this worker recorded; the parent
                    # re-emits it so `--ledger-out` yields one NDJSON
                    # stream attributable by request_id and shard_id.
                    final["ledger_events"] = [
                        {"type": ev.type, "t": ev.t, "fields": dict(ev.fields)}
                        for ev in led.events()
                    ]
                with send_lock:
                    try:
                        conn.send(
                            {"id": shutdown_id, "status": 200, "doc": final}
                        )
                    except (BrokenPipeError, OSError):
                        pass
                break
            pool.submit(answer, msg)
    finally:
        pool.shutdown(wait=False)
        conn.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------


class ShardHandle:
    """Parent-side endpoint of one worker process.

    Owns the pipe, the pending-future table, and the reader thread that
    resolves futures as the worker answers.  ``max_inflight`` is this
    shard's admission bound — :meth:`submit` past it raises
    :class:`~repro.errors.ServiceOverloaded`, which the HTTP layer turns
    into 429 + ``Retry-After`` for *this* shard's keyspace only.
    """

    def __init__(self, shard_id: int, proc, conn, max_inflight: int) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.shard_id = shard_id
        self.proc = proc
        self._conn = conn
        self._max_inflight = int(max_inflight)
        self._pending: Dict[int, "Future[Tuple[int, Dict[str, Any]]]"] = {}
        self._lock = threading.Lock()
        self._next_id = 0
        self._closed = False
        self._requests = 0
        self._reader: Optional[threading.Thread] = None

    def start_reader(self) -> None:
        """Start resolving responses (separate from ``__init__`` so every
        worker forks before any parent thread exists — threads held at
        fork time are a classic child-deadlock source)."""
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"repro-shard{self.shard_id}-reader",
            daemon=True,
        )
        self._reader.start()

    # -- properties ----------------------------------------------------
    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def requests(self) -> int:
        with self._lock:
            return self._requests

    @property
    def alive(self) -> bool:
        return self.proc.is_alive()

    # -- request path --------------------------------------------------
    def submit(
        self, method: str, kwargs: Optional[Mapping[str, Any]] = None
    ) -> "Future[Tuple[int, Dict[str, Any]]]":
        """Send one request; the future resolves to ``(status, doc)``.

        The ambient request id (when the caller runs inside a
        :func:`repro.obs.request_context` scope) rides along in the pipe
        message, crossing the process boundary with the work.
        """
        future: "Future[Tuple[int, Dict[str, Any]]]" = Future()
        request_id = obs.current_request_id()
        with self._lock:
            if self._closed or not self.proc.is_alive():
                raise ServiceOverloaded(
                    f"shard {self.shard_id} is not accepting requests"
                )
            if (method not in _CONTROL_METHODS
                    and len(self._pending) >= self._max_inflight):
                obs.counter("service.shard_rejected")
                raise ServiceOverloaded(
                    f"shard {self.shard_id} at capacity "
                    f"({self._max_inflight} requests in flight)"
                )
            self._next_id += 1
            msg_id = self._next_id
            self._pending[msg_id] = future
            self._requests += 1
            msg: Dict[str, Any] = {
                "id": msg_id, "method": method, "kwargs": dict(kwargs or {}),
            }
            if request_id is not None:
                msg["request_id"] = request_id
            try:
                self._conn.send(msg)
            except (BrokenPipeError, OSError):
                del self._pending[msg_id]
                raise ServiceOverloaded(
                    f"shard {self.shard_id} pipe is closed"
                ) from None
        obs.counter("service.shard_requests")
        return future

    def _read_loop(self) -> None:
        while True:
            try:
                msg = self._conn.recv()
            except (EOFError, OSError):
                break
            self._resolve(msg)
        self._fail_pending(f"shard {self.shard_id} exited")

    def _resolve(self, msg: Any) -> None:
        if not isinstance(msg, dict):
            return
        with self._lock:
            future = self._pending.pop(msg.get("id"), None)
        if future is not None:
            future.set_result(
                (int(msg.get("status", 500)), msg.get("doc") or {})
            )

    def _fail_pending(self, reason: str) -> None:
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            try:
                future.set_exception(ServiceOverloaded(reason))
            except Exception:
                pass

    # -- lifecycle -----------------------------------------------------
    def drain(self, timeout: float = 30.0) -> Optional[Dict[str, Any]]:
        """Stop admission, wait out in-flight work, stop the worker.

        Returns the worker's final metrics document when it answered the
        shutdown handshake in time, else ``None`` (the worker is then
        terminated rather than waited on forever).
        """
        with self._lock:
            if self._closed:
                return None
            self._closed = True
        deadline = time.monotonic() + timeout
        while self.inflight and time.monotonic() < deadline:
            time.sleep(0.01)
        final: Optional[Dict[str, Any]] = None
        try:
            ack: "Future[Tuple[int, Dict[str, Any]]]" = Future()
            with self._lock:
                self._next_id += 1
                self._pending[self._next_id] = ack
                self._conn.send({"id": self._next_id, "method": "shutdown"})
            _, final = ack.result(timeout=max(0.1, deadline - time.monotonic()))
        except Exception:
            final = None
        self.proc.join(timeout=max(0.1, deadline - time.monotonic()))
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=1.0)
        try:
            self._conn.close()
        except OSError:
            pass
        self._fail_pending(f"shard {self.shard_id} shut down")
        return final


class ShardPool:
    """N planning shards behind a consistent-hash ring.

    Implements the same backend surface the asyncio front-end drives for
    a single in-process service — ``submit_request`` / ``metrics`` /
    ``healthz`` / ``cache_stats`` / ``warm`` / ``drain`` — so serving
    code never branches on the deployment shape.

    Parameters
    ----------
    traces:
        Named traces every shard hosts (and the parent routes by).
    shards:
        Worker-process count (``>= 1``).
    cache_kwargs:
        Forwarded to each shard's :class:`~repro.service.cache.PlanCache`;
        pass the same ``disk_dir`` to share the persistent tier.
    service_kwargs:
        Forwarded to each shard's :class:`PlanningService` (workers,
        max_batch, max_wait, max_queue, timeout, tveg_capacity).
    max_inflight:
        Per-shard in-flight request bound (HTTP 429 past it).
    request_threads:
        Per-shard executor width for concurrent requests.
    start_method:
        ``multiprocessing`` start method override (default: the
        :func:`repro.parallel.mp_context` preference — fork where
        available).
    """

    def __init__(
        self,
        traces: Mapping[str, ContactTrace],
        shards: int,
        *,
        cache_kwargs: Optional[Mapping[str, Any]] = None,
        service_kwargs: Optional[Mapping[str, Any]] = None,
        max_inflight: int = 64,
        request_threads: int = 8,
        replicas: int = 64,
        start_method: Optional[str] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self._traces = dict(traces)
        self.ring = HashRing(shards, replicas=replicas)
        self._started = time.time()
        ctx = mp_context(start_method)
        cache_kwargs = dict(cache_kwargs or {})
        service_kwargs = dict(service_kwargs or {})
        # Final metrics docs from drained shards: merged into the pool
        # aggregate so /metrics counters stay cumulative across restarts
        # instead of silently resetting when a worker leaves.
        self._retired: List[Dict[str, Any]] = []
        self._retired_lock = threading.Lock()
        ledger_enabled = obs.get_ledger().enabled
        handles: List[ShardHandle] = []
        for shard_id in range(shards):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_shard_main,
                args=(shard_id, child_conn, self._traces, cache_kwargs,
                      service_kwargs, request_threads, ledger_enabled),
                name=f"repro-shard-{shard_id}",
                daemon=True,
            )
            proc.start()
            child_conn.close()  # the child's end lives in the child now
            handles.append(
                ShardHandle(shard_id, proc, parent_conn, max_inflight)
            )
        # Readers start only after every fork (see ShardHandle.start_reader).
        for handle in handles:
            handle.start_reader()
        self.handles = handles
        led = obs.get_ledger()
        if led.enabled:
            for handle in handles:
                led.emit(obs.EV_SHARD_STARTED, shard_id=handle.shard_id,
                         pid=handle.proc.pid)

    # -- routing -------------------------------------------------------
    @property
    def shards(self) -> int:
        return self.ring.shards

    def trace_names(self) -> List[str]:
        return sorted(self._traces)

    def _resolve_trace(self, name: Optional[str]) -> ContactTrace:
        # mirrors PlanningService._resolve_trace so routing and serving
        # agree on what a missing/ambiguous trace name means
        if name is None:
            if len(self._traces) == 1:
                return next(iter(self._traces.values()))
            raise KeyError(
                "request names no trace and the service hosts "
                f"{len(self._traces)} — pass \"trace\""
            )
        try:
            return self._traces[name]
        except KeyError:
            raise KeyError(
                f"unknown trace {name!r}; hosted: "
                f"{', '.join(sorted(self._traces)) or '(none)'}"
            ) from None

    def routing(self, method: str, kwargs: Mapping[str, Any]) -> str:
        """The content address ``(method, kwargs)`` routes by.

        Raises :class:`KeyError` for an unknown trace name — caught at
        the front-end and mapped to 404 without a worker round-trip.
        """
        trace = self._resolve_trace(kwargs.get("trace"))
        return routing_key(trace, method, kwargs)

    def shard_for(self, method: str, kwargs: Mapping[str, Any]) -> int:
        return self.ring.shard_for(self.routing(method, kwargs))

    # -- request path --------------------------------------------------
    def submit_request(
        self,
        method: str,
        kwargs: Mapping[str, Any],
        key: Optional[str] = None,
    ) -> Tuple[int, "Future[Tuple[int, Dict[str, Any]]]"]:
        """Route one parsed request and dispatch it to its owner shard.

        ``key`` skips recomputing the routing address when the caller
        already derived it (the front-end computes it once for its edge
        cache).  Returns ``(shard_id, future)``.
        """
        if key is None:
            key = self.routing(method, kwargs)
        shard_id = self.ring.shard_for(key)
        return shard_id, self.handles[shard_id].submit(method, kwargs)

    # -- control plane -------------------------------------------------
    def _broadcast(
        self, method: str, kwargs: Optional[Mapping[str, Any]] = None,
        timeout: float = 10.0,
    ) -> List[Optional[Dict[str, Any]]]:
        futures = []
        for handle in self.handles:
            try:
                futures.append(handle.submit(method, kwargs))
            except ServiceOverloaded:
                futures.append(None)
        docs: List[Optional[Dict[str, Any]]] = []
        for future in futures:
            if future is None:
                docs.append(None)
                continue
            try:
                _, doc = future.result(timeout=timeout)
                docs.append(doc)
            except Exception:
                docs.append(None)
        return docs

    def metrics(self) -> Dict[str, Any]:
        """Pool-wide metrics: per-shard service docs + parent-side state.

        Each live shard contributes its full single-process metrics
        document (cache, batcher, latency histograms) plus the parent's
        view of it (in-flight window, total routed requests) — the
        per-shard queue depths ``GET /metrics`` promises.
        """
        shard_docs = self._broadcast("metrics")
        shards = []
        for handle, doc in zip(self.handles, shard_docs):
            entry: Dict[str, Any] = {
                "shard": handle.shard_id,
                "alive": handle.alive,
                "inflight": handle.inflight,
                "routed_requests": handle.requests,
            }
            if doc is not None:
                entry["service"] = doc
                batcher = doc.get("batcher") or {}
                entry["queue_depth"] = batcher.get("queue_depth")
            shards.append(entry)
        with self._retired_lock:
            retired = list(self._retired)
        # Cumulative pool view: live shard docs plus everything drained
        # shards reported in their final handshake, so counters and
        # histograms survive worker exits instead of dropping to zero.
        contributing = [d for d in shard_docs if d] + retired
        telemetry = MetricsRegistry.merge_docs(
            [d.get("telemetry") or {} for d in contributing]
        )
        totals = {
            "requests": sum(int(d.get("requests", 0)) for d in contributing),
            "errors": sum(int(d.get("errors", 0)) for d in contributing),
            "retired_shards": len(retired),
        }
        return {
            "mode": "sharded",
            "uptime_seconds": time.time() - self._started,
            "shards": shards,
            "requests": sum(h.requests for h in self.handles),
            "traces": self.trace_names(),
            "telemetry": telemetry,
            "totals": totals,
        }

    def healthz(self) -> Dict[str, Any]:
        alive = sum(1 for h in self.handles if h.alive)
        return {
            "status": "ok" if alive == len(self.handles) else "degraded",
            "uptime_seconds": time.time() - self._started,
            "shards": len(self.handles),
            "shards_alive": alive,
            "inflight": [h.inflight for h in self.handles],
            "traces": self.trace_names(),
        }

    def cache_stats(self) -> Dict[str, Any]:
        return {
            "shards": self._broadcast("cache_stats"),
        }

    def warm(self, configs: Iterable[Mapping[str, Any]]) -> Dict[str, int]:
        """Replay warm-up configs, each on the shard that will own it.

        Partitioning by routing key is the point: warming shard 0 with a
        config shard 3 serves would prime the wrong memory tier (only the
        shared disk tier would benefit).  Unroutable configs (stale trace
        names) count as failed, matching
        :meth:`PlanningService.warm`'s never-abort contract.
        """
        per_shard: List[List[Mapping[str, Any]]] = [
            [] for _ in self.handles
        ]
        failed = 0
        for config in configs:
            body = dict(config)
            op = body.get("op", "plan")
            method = "plan_many" if op == "plan_many" else "plan"
            probe = {k: v for k, v in body.items() if k != "op"}
            try:
                per_shard[self.shard_for(method, probe)].append(body)
            except KeyError:
                failed += 1
        futures = []
        for handle, subset in zip(self.handles, per_shard):
            if subset:
                futures.append(handle.submit("warm", {"configs": subset}))
        warmed = 0
        for future in futures:
            try:
                _, doc = future.result()
                warmed += int(doc.get("warmed", 0))
                failed += int(doc.get("failed", 0))
            except Exception:
                failed += 1
        return {"warmed": warmed, "failed": failed}

    # -- lifecycle -----------------------------------------------------
    def drain(self, timeout: float = 30.0) -> List[Optional[Dict[str, Any]]]:
        """Gracefully stop every shard; returns their final metrics docs.

        Each worker's final handshake is folded into the pool's retained
        aggregate (counters and telemetry stay cumulative in
        :meth:`metrics`), and any ledger events the worker recorded are
        re-emitted into the parent ledger — already tagged with their
        ``shard_id`` and originating ``request_id`` — so one
        ``--ledger-out`` file tells the whole pool's story.
        """
        finals = [h.drain(timeout=timeout) for h in self.handles]
        led = obs.get_ledger()
        for handle, final in zip(self.handles, finals):
            if final is None:
                continue
            shipped = final.pop("ledger_events", None) or []
            if led.enabled:
                for ev in shipped:
                    led.emit(
                        str(ev.get("type", "unknown")),
                        t=ev.get("t"),
                        **dict(ev.get("fields") or {}),
                    )
            with self._retired_lock:
                self._retired.append(final)
        if led.enabled:
            for handle, final in zip(self.handles, finals):
                led.emit(
                    obs.EV_SHARD_EXITED, shard_id=handle.shard_id,
                    pid=handle.proc.pid,
                    requests=(final or {}).get("requests"),
                    clean=final is not None,
                )
        return finals

    def close(self) -> None:
        self.drain(timeout=5.0)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

"""Consistent-hash routing: which shard owns which plan configuration.

A sharded service only beats a single process if repeat configurations
keep landing on the shard whose live caches — the registry TVEG, its
NodeSweep/DCS/cost structures, the hot tier of the plan cache — are
already warm for them.  Random or round-robin dispatch would spread K
repeats of one configuration over K shards and pay the cold build K
times; the paper's workload shape (many ``(source, deadline, algorithm)``
sweeps over one trace, cf. ROADMAP item 1) makes that the common case,
not the corner case.

:class:`HashRing` is the classic consistent-hash ring over md5 with
virtual nodes: each shard owns ``replicas`` points on a 64-bit circle and
a key routes to the first point at or clockwise of its own hash.  Adding
or removing one shard therefore remaps only ~1/N of the key space —
resizing a pool keeps most shards' warm caches relevant, where modulo
hashing would reshuffle nearly everything.

:func:`routing_key` reduces a parsed ``/plan`` / ``/plan_many`` request
to the content address it routes by.  It is built on
:func:`repro.api.plan_cache_key` over the **raw contact trace** — no TVEG
is constructed, so the front-end pays ~tens of microseconds per request,
not a graph build.  The routing key is *not* byte-equal to the plan
cache's key (that one hashes the window-restricted TVEG the shard builds)
but it is deterministic and injective over request configurations, which
is all routing and front-end response caching need: identical requests
share a routing key, and a routing key never aliases two configurations
that could yield different plans.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..api import plan_cache_key
from ..traces.model import ContactTrace

__all__ = ["HashRing", "routing_key"]


class HashRing:
    """Consistent-hash ring mapping string keys to shard indices.

    Parameters
    ----------
    shards:
        Number of shards (``>= 1``); keys map to ``0..shards-1``.
    replicas:
        Virtual nodes per shard.  More replicas smooth the key-space split
        (64 keeps the max/min shard share within ~2x for realistic pool
        sizes) at the cost of a longer sorted point list; lookups stay
        O(log(shards * replicas)) via bisect.
    """

    def __init__(self, shards: int, replicas: int = 64) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.shards = int(shards)
        self.replicas = int(replicas)
        points: List[Tuple[int, int]] = []
        for shard in range(self.shards):
            for replica in range(self.replicas):
                points.append((self._hash(f"shard:{shard}:{replica}"), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    @staticmethod
    def _hash(value: str) -> int:
        digest = hashlib.md5(value.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def shard_for(self, key: str) -> int:
        """The shard index owning ``key`` (first point clockwise)."""
        if self.shards == 1:
            return 0
        i = bisect_right(self._hashes, self._hash(key))
        if i == len(self._hashes):
            i = 0  # wrap past the top of the circle
        return self._owners[i]

    def distribution(self, keys: Mapping[str, Any] | List[str]) -> List[int]:
        """Per-shard key counts for ``keys`` — a load-skew diagnostic."""
        counts = [0] * self.shards
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts


#: request fields that are NOT scheduler kwargs (mirrors
#: server.parse_plan_request's field whitelists, plus plan_many spellings)
_NON_SCHEDULER_FIELDS = frozenset((
    "trace", "deadline", "deadlines", "source", "sources", "algorithm",
    "channel", "window", "seed", "compute", "timeout",
))


def routing_key(
    trace: ContactTrace,
    method: str,
    kwargs: Mapping[str, Any],
) -> str:
    """The content address a parsed request routes by.

    ``method`` / ``kwargs`` are :func:`repro.service.server.parse_plan_request`
    output; ``trace`` is the already-resolved
    :class:`~repro.traces.model.ContactTrace` the request names.  A
    ``plan_many`` request routes by its *first* member — every member
    shares the trace/channel/window/seed that determine which live TVEG
    serves it, so one shard owns the whole batch.
    """
    if method == "plan_many":
        sources = list(kwargs.get("sources") or [None])
        source: Optional[Any] = sources[0] if sources else None
        deadlines = kwargs.get("deadlines", 2000.0)
        if isinstance(deadlines, (list, tuple)):
            deadline = float(deadlines[0]) if deadlines else 2000.0
        else:
            deadline = float(deadlines)
    else:
        source = kwargs.get("source")
        deadline = float(kwargs.get("deadline", 2000.0))
    scheduler_kwargs: Dict[str, Any] = {
        k: v for k, v in kwargs.items() if k not in _NON_SCHEDULER_FIELDS
    }
    window = kwargs.get("window")
    if isinstance(window, list):
        window = tuple(window)
    return plan_cache_key(
        trace,
        source,
        deadline,
        algorithm=kwargs.get("algorithm", "eedcb"),
        channel=kwargs.get("channel", "static"),
        window=window,
        seed=kwargs.get("seed"),
        **scheduler_kwargs,
    )

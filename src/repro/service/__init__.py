"""Planning service: plan cache, batched scheduling queue, HTTP server.

The schedulers in this package are deterministic: the same problem
instance always yields the same plan.  This subpackage turns that into a
serving layer — compute once, answer many:

* :mod:`~repro.service.cache` — :class:`PlanCache`, a content-addressed
  two-tier (LRU memory + JSON disk) cache of
  :class:`~repro.api.BroadcastPlan` keyed by the plan's
  ``manifest["config_hash"]``;
* :mod:`~repro.service.batcher` — :class:`Batcher`, a bounded request
  queue that groups concurrent requests, executes one compute per unique
  key on a thread pool, and fans results out to duplicates;
* :mod:`~repro.service.server` — :class:`PlanningService`, the embeddable
  facade combining both over a set of named traces, plus the
  ``ThreadingHTTPServer`` JSON API behind ``repro serve``.

Quick embedding::

    from repro import HaggleLikeConfig, haggle_like_trace
    from repro.service import PlanningService

    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=20), seed=7)
    with PlanningService({"demo": trace}) as svc:
        r = svc.plan("demo", 2000.0, window=9000.0, seed=7)
        print(r.plan.total_cost, r.cached)

Quick serving::

    $ python -m repro serve --synthetic 20 --port 8437 &
    $ curl -s -X POST localhost:8437/plan \\
        -d '{"deadline": 2000, "window": 9000, "seed": 7}'
"""

from .batcher import Batcher, BatcherStats
from .cache import CacheStats, PlanCache
from .server import (
    PlanningService,
    PlanResponse,
    PlanSetResponse,
    make_server,
    serve,
)

__all__ = [
    "Batcher",
    "BatcherStats",
    "CacheStats",
    "PlanCache",
    "PlanResponse",
    "PlanSetResponse",
    "PlanningService",
    "make_server",
    "serve",
]

"""Planning service: plan cache, batched scheduling queue, HTTP server.

The schedulers in this package are deterministic: the same problem
instance always yields the same plan.  This subpackage turns that into a
serving layer — compute once, answer many:

* :mod:`~repro.service.cache` — :class:`PlanCache`, a content-addressed
  two-tier (LRU memory + JSON disk) cache of
  :class:`~repro.api.BroadcastPlan` keyed by the plan's
  ``manifest["config_hash"]``;
* :mod:`~repro.service.batcher` — :class:`Batcher`, a bounded request
  queue that groups concurrent requests, executes one compute per unique
  key on a thread pool, and fans results out to duplicates;
* :mod:`~repro.service.server` — :class:`PlanningService`, the embeddable
  facade combining both over a set of named traces, plus the legacy
  ``ThreadingHTTPServer`` JSON API (``repro serve --legacy-http``);
* :mod:`~repro.service.router` — :class:`HashRing` consistent hashing and
  :func:`routing_key`, mapping each plan configuration to the shard whose
  live caches are warm for it;
* :mod:`~repro.service.shard` — :class:`ShardPool`, worker processes each
  running a full :class:`PlanningService` over duplex pipes, sharing one
  disk cache tier;
* :mod:`~repro.service.asgi` — the asyncio HTTP front-end
  (:class:`AsyncPlanningServer`) behind ``repro serve``: keep-alive,
  single-buffer responses, per-shard backpressure, an edge cache of
  serialized responses, and graceful SIGTERM drain;
* :mod:`~repro.service.top` — the ``repro top`` live view: polls
  ``GET /metrics`` and renders per-shard qps, latency percentiles,
  queue depth, and cache hit ratios in the terminal.

Quick embedding::

    from repro import HaggleLikeConfig, haggle_like_trace
    from repro.service import PlanningService

    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=20), seed=7)
    with PlanningService({"demo": trace}) as svc:
        r = svc.plan("demo", 2000.0, window=9000.0, seed=7)
        print(r.plan.total_cost, r.cached)

Quick serving::

    $ python -m repro serve --synthetic 20 --port 8437 &
    $ curl -s -X POST localhost:8437/plan \\
        -d '{"deadline": 2000, "window": 9000, "seed": 7}'
"""

from .asgi import AsyncPlanningServer, BackgroundServer, LocalBackend
from .batcher import Batcher, BatcherStats
from .cache import CacheStats, PlanCache
from .router import HashRing, routing_key
from .server import (
    PlanningService,
    PlanResponse,
    PlanSetResponse,
    make_server,
    read_warm_file,
    serve,
)
from .shard import ShardHandle, ShardPool
from .top import ShardRow, build_rows, fetch_metrics, render_top, top_loop

__all__ = [
    "AsyncPlanningServer",
    "BackgroundServer",
    "Batcher",
    "BatcherStats",
    "CacheStats",
    "HashRing",
    "LocalBackend",
    "PlanCache",
    "PlanResponse",
    "PlanSetResponse",
    "PlanningService",
    "ShardHandle",
    "ShardPool",
    "ShardRow",
    "build_rows",
    "fetch_metrics",
    "make_server",
    "read_warm_file",
    "render_top",
    "routing_key",
    "serve",
    "top_loop",
]

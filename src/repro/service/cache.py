"""Content-addressed plan cache: LRU + TTL memory tier, JSON disk tier.

Identical planning problems produce identical plans — every scheduler in
this package is deterministic given its inputs — so a plan computed once
never needs computing again.  :class:`PlanCache` exploits that: plans are
keyed by the :func:`~repro.obs.manifest.config_hash` of their full problem
configuration (algorithm, channel, deadline, window, scheduler kwargs,
seed, physical parameters, and the *content fingerprint* of the trace or
TVEG — see :meth:`repro.traces.model.ContactTrace.fingerprint` /
:meth:`repro.tveg.graph.TVEG.fingerprint`), which
:func:`repro.api.plan_broadcast` records as ``manifest["config_hash"]`` on
every plan.  Same hash ⇒ same problem ⇒ same plan.

Two tiers:

* **memory** — a bounded LRU of live :class:`~repro.api.BroadcastPlan`
  objects (TVEG included), optionally TTL-expired.  A hit is a dict lookup
  and returns the original plan object: byte-identical schedule, cost, and
  info, in well under a millisecond (the ``plan_cache_hit`` benchmark op
  gates this).
* **disk** — optional; plans persist as JSON plan documents
  (:func:`repro.schedule.io.write_plan_json`) under
  ``<dir>/<config_hash>.json``.  A memory miss falls through to disk, the
  document is replayed into a fresh ``BroadcastPlan``
  (:func:`repro.schedule.io.doc_to_plan`) against a TVEG the caller
  supplies lazily, and the entry is promoted back into memory.  The disk
  tier survives process restarts, so a restarted ``repro serve`` warms up
  from its predecessor's work.

Every lookup emits :data:`~repro.obs.EV_PLAN_CACHE_HIT` /
:data:`~repro.obs.EV_PLAN_CACHE_MISS` ledger events (no-ops when recording
is off) plus ``service.plan_cache_*`` tracer counters, and updates the local
:class:`CacheStats` the ``/cache/stats`` endpoint serves.

All operations are thread-safe — the HTTP front-end is a
``ThreadingHTTPServer``.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .. import obs
from ..errors import TraceFormatError

__all__ = ["CacheStats", "PlanCache"]


@dataclass
class CacheStats:
    """Counters one :class:`PlanCache` accumulated since construction."""

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    puts: int = 0
    evictions: int = 0
    expirations: int = 0
    disk_writes: int = 0
    disk_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        n = self.lookups
        return self.hits / n if n else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "puts": self.puts,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "disk_writes": self.disk_writes,
            "disk_errors": self.disk_errors,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    plan: Any  # BroadcastPlan (typed loosely: api imports this module's pkg)
    stored_at: float = field(default_factory=time.time)


def _is_key(key: str) -> bool:
    """Config hashes are short lowercase hex — exactly what makes them safe
    file names for the disk tier."""
    return (
        isinstance(key, str)
        and 0 < len(key) <= 64
        and all(c in "0123456789abcdef" for c in key)
    )


class PlanCache:
    """Two-tier content-addressed cache of :class:`~repro.api.BroadcastPlan`.

    Parameters
    ----------
    capacity:
        Maximum in-memory entries; the least recently used entry is evicted
        past it (evicted plans remain on disk when a disk tier is set).
    ttl:
        Seconds after which a stored plan expires, or ``None`` for no
        expiry.  Applies to both tiers (disk entries carry their storage
        time in the document).
    disk_dir:
        Directory for the persistent tier, created on first write; ``None``
        disables it.
    """

    def __init__(
        self,
        capacity: int = 128,
        ttl: Optional[float] = None,
        disk_dir: Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"cache ttl must be positive, got {ttl}")
        self._capacity = int(capacity)
        self._ttl = float(ttl) if ttl is not None else None
        self._disk_dir = os.fspath(disk_dir) if disk_dir is not None else None
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._stats = CacheStats()

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def ttl(self) -> Optional[float]:
        return self._ttl

    @property
    def disk_dir(self) -> Optional[str]:
        return self._disk_dir

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Non-mutating peek: would :meth:`lookup` hit either tier?

        Touches no LRU order and no statistics (the HTTP layer uses it to
        label responses without distorting hit rates).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and not self._expired(entry.stored_at):
                return True
        return self._disk_path_if_exists(key) is not None

    def keys(self) -> List[str]:
        """Memory-tier keys, most recently used last."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> Dict[str, Any]:
        """A snapshot of the counters plus tier sizing."""
        with self._lock:
            doc = self._stats.as_dict()
            doc["entries"] = len(self._entries)
        doc["capacity"] = self._capacity
        doc["ttl"] = self._ttl
        doc["disk_dir"] = self._disk_dir
        doc["disk_entries"] = len(self.disk_keys()) if self._disk_dir else 0
        return doc

    # ------------------------------------------------------------------
    def lookup(
        self,
        key: str,
        tveg_factory: Optional[Callable[[], Any]] = None,
    ) -> Optional[Any]:
        """The cached plan for ``key``, or ``None`` on a miss.

        A memory hit returns the stored plan object directly (no graph
        work at all).  A disk hit needs a TVEG to replay the document
        against: ``tveg_factory`` is called — lazily, only in this case —
        to supply one.  Without a factory the disk tier is skipped.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if self._expired(entry.stored_at):
                    del self._entries[key]
                    self._stats.expirations += 1
                else:
                    self._entries.move_to_end(key)
                    self._stats.hits += 1
                    self._stats.memory_hits += 1
                    self._record(obs.EV_PLAN_CACHE_HIT, key, tier="memory")
                    return entry.plan

        plan = self._disk_lookup(key, tveg_factory)
        with self._lock:
            if plan is not None:
                self._stats.hits += 1
                self._stats.disk_hits += 1
                self._record(obs.EV_PLAN_CACHE_HIT, key, tier="disk")
                self._remember(key, plan)
                return plan
            self._stats.misses += 1
            self._record(obs.EV_PLAN_CACHE_MISS, key)
            return None

    def put(self, key: str, plan: Any) -> None:
        """Store a freshly computed plan under its config hash."""
        if not _is_key(key):
            raise ValueError(f"not a config-hash cache key: {key!r}")
        with self._lock:
            self._stats.puts += 1
            self._remember(key, plan)
        self._disk_store(key, plan)

    def clear(self, disk: bool = False) -> int:
        """Drop the memory tier (and the disk tier when ``disk=True``).

        Returns the number of entries removed across both tiers.
        """
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
        if disk and self._disk_dir:
            for key in self.disk_keys():
                try:
                    os.unlink(os.path.join(self._disk_dir, key + ".json"))
                    n += 1
                except OSError:
                    with self._lock:
                        self._stats.disk_errors += 1
        return n

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _record(self, event: str, key: str, **fields: Any) -> None:
        obs.counter(f"service.{event}")
        led = obs.get_ledger()
        if led.enabled:
            led.emit(event, key=key, **fields)

    def _expired(self, stored_at: float) -> bool:
        return self._ttl is not None and time.time() - stored_at > self._ttl

    def _remember(self, key: str, plan: Any) -> None:
        """Insert into the memory tier, evicting LRU entries past capacity.

        Caller holds the lock.
        """
        self._entries[key] = _Entry(plan)
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self._stats.evictions += 1

    # ------------------------------------------------------------------
    # disk tier
    # ------------------------------------------------------------------
    def disk_keys(self) -> List[str]:
        """Keys present in the disk tier (empty without one)."""
        if not self._disk_dir or not os.path.isdir(self._disk_dir):
            return []
        return sorted(
            name[:-5]
            for name in os.listdir(self._disk_dir)
            if name.endswith(".json") and _is_key(name[:-5])
        )

    def _disk_path_if_exists(self, key: str) -> Optional[str]:
        if not self._disk_dir or not _is_key(key):
            return None
        path = os.path.join(self._disk_dir, key + ".json")
        return path if os.path.isfile(path) else None

    def _disk_lookup(
        self, key: str, tveg_factory: Optional[Callable[[], Any]]
    ) -> Optional[Any]:
        from ..schedule.io import doc_to_plan, read_plan_json

        path = self._disk_path_if_exists(key)
        if path is None or tveg_factory is None:
            return None
        try:
            doc = read_plan_json(path)
        except (OSError, TraceFormatError):
            with self._lock:
                self._stats.disk_errors += 1
            return None
        stored_at = doc.get("cached_unix")
        if isinstance(stored_at, (int, float)) and self._expired(stored_at):
            with self._lock:
                self._stats.expirations += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        try:
            return doc_to_plan(doc, tveg_factory())
        except TraceFormatError:
            with self._lock:
                self._stats.disk_errors += 1
            return None

    def _disk_store(self, key: str, plan: Any) -> None:
        from ..schedule.io import plan_to_doc, write_plan_json

        if not self._disk_dir:
            return
        try:
            os.makedirs(self._disk_dir, exist_ok=True)
            doc = plan_to_doc(plan)
            doc["cached_unix"] = time.time()
            path = os.path.join(self._disk_dir, key + ".json")
            tmp = path + f".tmp.{os.getpid()}.{threading.get_ident()}"
            write_plan_json(doc, tmp)
            os.replace(tmp, path)  # atomic: readers never see partial JSON
        except (OSError, TraceFormatError):
            with self._lock:
                self._stats.disk_errors += 1
            return
        with self._lock:
            self._stats.disk_writes += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tiers = f"entries={len(self)}/{self._capacity}"
        if self._disk_dir:
            tiers += f", disk={self._disk_dir!r}"
        return f"PlanCache({tiers})"

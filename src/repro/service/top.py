"""``repro top``: a live per-shard view of a running planning service.

Polls ``GET /metrics`` (the JSON representation) on an interval and
renders a terminal table: one row per shard — queries per second
(computed from request-counter deltas between consecutive polls),
p50/p95/p99 request latency (estimated from the shard's streaming
:class:`~repro.obs.histogram.FixedHistogram` buckets), in-flight window,
batcher queue depth, and plan-cache hit ratio — plus a front-end summary
line with the edge-cache ratio.  Works against both deployment shapes:
a ``mode: "sharded"`` pool doc yields one row per worker, a local doc
yields a single ``local`` row.

Everything below the HTTP fetch is pure functions over metrics
documents (``build_rows`` / ``render_top``), so the rendering is unit
testable without a server; :func:`top_loop` adds the polling, screen
clearing, and Ctrl-C handling the CLI subcommand wires up.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, TextIO

from ..obs.histogram import FixedHistogram

__all__ = ["ShardRow", "build_rows", "fetch_metrics", "render_top", "top_loop"]

#: ANSI "clear screen + home" — what keeps the table in place per frame
_CLEAR = "\x1b[2J\x1b[H"


def fetch_metrics(url: str, timeout: float = 5.0) -> Dict[str, Any]:
    """GET ``{url}/metrics`` and parse the JSON document."""
    req = urllib.request.Request(
        url.rstrip("/") + "/metrics", headers={"Accept": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


@dataclass
class ShardRow:
    """One rendered table row (a shard, or the whole local service)."""

    shard: str
    alive: bool
    qps: Optional[float]
    p50_ms: Optional[float]
    p95_ms: Optional[float]
    p99_ms: Optional[float]
    inflight: Optional[int]
    queue_depth: Optional[int]
    cache_ratio: Optional[float]
    requests: int


def _request_histogram(service_doc: Mapping[str, Any]) -> Optional[FixedHistogram]:
    """The shard's merged ``request.*`` histogram (plan + plan_many)."""
    hists = (service_doc.get("telemetry") or {}).get("histograms") or {}
    merged: Optional[FixedHistogram] = None
    for name, hdoc in hists.items():
        if not name.startswith("request."):
            continue
        h = FixedHistogram.from_dict(hdoc)
        merged = h if merged is None else merged.merge(h)
    return merged


def _quantiles_ms(service_doc: Mapping[str, Any]):
    h = _request_histogram(service_doc)
    if h is None or not h.count:
        return None, None, None
    return tuple(
        (h.quantile(q) or 0.0) * 1e3 for q in (0.50, 0.95, 0.99)
    )


def _service_row(
    label: str,
    alive: bool,
    service_doc: Mapping[str, Any],
    prev_doc: Optional[Mapping[str, Any]],
    dt: Optional[float],
    inflight: Optional[int],
) -> ShardRow:
    requests = int(service_doc.get("requests", 0))
    qps: Optional[float] = None
    if prev_doc is not None and dt and dt > 0:
        qps = max(0.0, (requests - int(prev_doc.get("requests", 0))) / dt)
    p50, p95, p99 = _quantiles_ms(service_doc)
    cache = service_doc.get("cache") or {}
    batcher = service_doc.get("batcher") or {}
    return ShardRow(
        shard=label,
        alive=alive,
        qps=qps,
        p50_ms=p50,
        p95_ms=p95,
        p99_ms=p99,
        inflight=inflight,
        queue_depth=batcher.get("queue_depth"),
        cache_ratio=cache.get("hit_rate"),
        requests=requests,
    )


def build_rows(
    doc: Mapping[str, Any],
    prev: Optional[Mapping[str, Any]] = None,
    dt: Optional[float] = None,
) -> List[ShardRow]:
    """Table rows for one metrics document (optionally with the previous
    poll for qps deltas)."""
    if doc.get("mode") == "sharded":
        prev_by_shard: Dict[Any, Mapping[str, Any]] = {}
        if prev is not None:
            for entry in prev.get("shards") or []:
                if entry.get("service"):
                    prev_by_shard[entry.get("shard")] = entry["service"]
        rows = []
        for entry in doc.get("shards") or []:
            service_doc = entry.get("service") or {}
            rows.append(
                _service_row(
                    str(entry.get("shard", "?")),
                    bool(entry.get("alive")),
                    service_doc,
                    prev_by_shard.get(entry.get("shard")),
                    dt,
                    entry.get("inflight"),
                )
            )
        return rows
    return [
        _service_row(
            "local", True, doc,
            prev if prev is not None and prev.get("mode") != "sharded" else None,
            dt, doc.get("inflight"),
        )
    ]


def _fmt(value: Optional[float], spec: str = "8.1f", width: int = 8) -> str:
    if value is None:
        return "-".rjust(width)
    return format(value, spec)


def render_top(
    doc: Mapping[str, Any],
    prev: Optional[Mapping[str, Any]] = None,
    dt: Optional[float] = None,
) -> str:
    """One full frame of the ``repro top`` display (no ANSI codes)."""
    rows = build_rows(doc, prev, dt)
    uptime = float(doc.get("uptime_seconds", 0.0))
    lines = [
        f"repro top — uptime {uptime:8.1f}s — "
        f"{len(rows)} shard(s), {sum(r.requests for r in rows)} request(s)"
    ]
    frontend = doc.get("frontend")
    if isinstance(frontend, Mapping):
        edge = frontend.get("edge_cache") or {}
        hits = int(edge.get("hits", 0))
        misses = int(edge.get("misses", 0))
        ratio = hits / (hits + misses) if hits + misses else 0.0
        lines.append(
            f"frontend: served={int(frontend.get('served', 0))} "
            f"errors={int(frontend.get('errors', 0))} "
            f"active={int(frontend.get('active_requests', 0))} "
            f"edge_cache_ratio={ratio:.2f}"
        )
    lines.append("")
    lines.append(
        f"{'SHARD':>6} {'ALIVE':>5} {'QPS':>8} {'P50MS':>8} {'P95MS':>8} "
        f"{'P99MS':>8} {'INFL':>5} {'QDEPTH':>6} {'CACHE%':>7} {'REQS':>8}"
    )
    for r in rows:
        cache_pct = None if r.cache_ratio is None else 100.0 * r.cache_ratio
        lines.append(
            f"{r.shard:>6} {('yes' if r.alive else 'NO'):>5} "
            f"{_fmt(r.qps)} {_fmt(r.p50_ms, '8.2f')} {_fmt(r.p95_ms, '8.2f')} "
            f"{_fmt(r.p99_ms, '8.2f')} "
            f"{_fmt(float(r.inflight) if r.inflight is not None else None, '5.0f', 5)} "
            f"{_fmt(float(r.queue_depth) if r.queue_depth is not None else None, '6.0f', 6)} "
            f"{_fmt(cache_pct, '7.1f', 7)} {r.requests:>8d}"
        )
    return "\n".join(lines)


def top_loop(
    url: str,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    stream: Optional[TextIO] = None,
    clear: bool = True,
    fetch=fetch_metrics,
) -> int:
    """Poll ``url`` and render frames until interrupted.

    ``iterations`` bounds the number of frames (``None`` = run until
    Ctrl-C); ``fetch`` is injectable for tests.  Returns a process exit
    code: 0 on a clean stop, 1 when the very first poll fails (the
    server is unreachable — later failures render as an error frame and
    keep polling, since a service mid-restart is exactly when you want
    ``top`` to keep watching).
    """
    out = stream if stream is not None else sys.stdout
    prev: Optional[Dict[str, Any]] = None
    prev_at: Optional[float] = None
    frames = 0
    while iterations is None or frames < iterations:
        try:
            doc = fetch(url)
        except Exception as exc:
            if frames == 0:
                print(f"repro top: cannot reach {url}: {exc}", file=out)
                return 1
            frame = f"repro top: poll failed: {exc} (retrying)"
        else:
            now = time.monotonic()
            dt = now - prev_at if prev_at is not None else None
            frame = render_top(doc, prev, dt)
            prev, prev_at = doc, now
        if clear:
            out.write(_CLEAR)
        print(frame, file=out)
        try:
            out.flush()
        except Exception:
            pass
        frames += 1
        if iterations is not None and frames >= iterations:
            break
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            break
    return 0

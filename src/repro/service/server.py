"""Embeddable planning service and its stdlib-only HTTP front-end.

:class:`PlanningService` composes the pieces of this package into one
object an application (or the bundled HTTP server) drives:

* a set of **named contact traces** it plans against;
* a bounded registry of **shared TVEGs** — one per distinct
  ``(trace, channel, window, seed)`` — so concurrent requests that differ
  only in algorithm or source hit the same live graph object and share its
  DCS / cost caches;
* a :class:`~repro.service.cache.PlanCache` answering repeated problems
  without recomputation;
* a :class:`~repro.service.batcher.Batcher` deduping and amortizing what
  the cache misses.

The HTTP layer is deliberately boring: :class:`ThreadingHTTPServer` from
the standard library, JSON in / JSON out, five endpoints:

========================  ====================================================
``POST /plan``            plan one broadcast; body mirrors
                          :meth:`PlanningService.plan`'s keywords
``POST /plan_many``       plan a batch of broadcasts over one instance via
                          :func:`repro.plan_broadcast_many`; body mirrors
                          :meth:`PlanningService.plan_many`'s keywords
``GET /healthz``          liveness + queue depth
``GET /metrics``          cache, batcher, request counters, and latency
                          histograms — JSON by default, Prometheus text
                          via ``Accept: text/plain``
``GET /cache/stats``      the plan cache's counters alone
========================  ====================================================

Admission control surfaces as status codes: a full batch queue is **429**
with a ``Retry-After`` header, a request that waited past the per-request
timeout is **504** (the computation keeps running and lands in the cache,
so the retry is usually a hit), an infeasible instance is **422**, and
malformed input is **400** — the server never turns a bad request into a
stack trace.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .. import obs
from ..api import (
    BroadcastPlan,
    BroadcastPlanSet,
    plan_broadcast,
    plan_broadcast_many,
    plan_cache_key,
)
from ..errors import InfeasibleError, ReproError, ServiceOverloaded
from ..obs.histogram import MetricsRegistry
from ..obs.metrics import percentile
from ..obs.promtext import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
    wants_prometheus,
)
from ..schedule.io import plan_to_doc, planset_to_doc
from ..traces.model import ContactTrace
from ..tveg.builders import tveg_from_trace
from ..tveg.graph import TVEG
from .batcher import Batcher
from .cache import PlanCache

__all__ = [
    "LatencyRecorder",
    "PlanResponse",
    "PlanSetResponse",
    "PlanningService",
    "exception_status",
    "execute_request",
    "make_server",
    "parse_plan_request",
    "read_warm_file",
    "serve",
]


@dataclass(frozen=True)
class PlanResponse:
    """One :meth:`PlanningService.plan` outcome.

    ``cached`` reports whether the key was already present *before* this
    request ran (a peek, so duplicate concurrent misses all honestly say
    ``False`` even though only one of them computes).
    """

    plan: BroadcastPlan
    key: str
    cached: bool
    wall_seconds: float

    def as_doc(self) -> Dict[str, Any]:
        """The JSON document ``POST /plan`` responds with."""
        return {
            "key": self.key,
            "cached": self.cached,
            "wall_seconds": self.wall_seconds,
            "plan": plan_to_doc(self.plan),
        }


@dataclass(frozen=True)
class PlanSetResponse:
    """One :meth:`PlanningService.plan_many` outcome.

    ``keys`` and ``cached`` run parallel to ``planset`` in request order;
    each ``cached`` flag is the same pre-run peek :class:`PlanResponse`
    reports for single plans.
    """

    planset: BroadcastPlanSet
    keys: Tuple[str, ...]
    cached: Tuple[bool, ...]
    wall_seconds: float

    def as_doc(self) -> Dict[str, Any]:
        """The JSON document ``POST /plan_many`` responds with."""
        return {
            "keys": list(self.keys),
            "cached": list(self.cached),
            "wall_seconds": self.wall_seconds,
            "planset": planset_to_doc(self.planset),
        }


#: request-body fields POST /plan forwards to PlanningService.plan
_PLAN_FIELDS = (
    "trace", "deadline", "source", "algorithm", "channel", "window", "seed",
    "compute", "timeout",
)

#: request-body fields POST /plan_many forwards to PlanningService.plan_many
_PLAN_MANY_FIELDS = (
    "trace", "deadlines", "sources", "algorithm", "channel", "window",
    "seed", "compute",
)


def parse_plan_request(path: str, body: Any) -> Tuple[str, Dict[str, Any]]:
    """Validate a ``/plan`` or ``/plan_many`` JSON body.

    Returns ``(method_name, kwargs)`` where ``method_name`` is the
    :class:`PlanningService` method to call (``"plan"`` / ``"plan_many"``)
    and ``kwargs`` are its keyword arguments with ``scheduler_kwargs``
    already merged in.  Shared by every front-end — the threading server,
    the asyncio server, and the shard router — so a request is judged by
    exactly one set of rules no matter which door it came in through.

    Raises :class:`ValueError` with a client-facing message (HTTP 400) on
    malformed input, and :class:`KeyError` for an unknown endpoint path.
    """
    if path == "/plan":
        fields, required, method = _PLAN_FIELDS, "deadline", "plan"
    elif path == "/plan_many":
        fields, required, method = _PLAN_MANY_FIELDS, "sources", "plan_many"
    else:
        raise KeyError(f"no such endpoint: {path}")
    if not isinstance(body, dict):
        raise ValueError("request body must be a JSON object")
    if required not in body:
        raise ValueError(f'missing required field "{required}"')
    extra = body.get("scheduler_kwargs", {})
    if not isinstance(extra, dict):
        raise ValueError('"scheduler_kwargs" must be an object')
    unknown = set(body) - set(fields) - {"scheduler_kwargs"}
    if unknown:
        raise ValueError(f"unknown fields: {', '.join(sorted(unknown))}")
    kwargs = {k: body[k] for k in fields if k in body}
    window = kwargs.get("window")
    if isinstance(window, list):
        kwargs["window"] = tuple(window)
    overlap = set(kwargs) & set(extra)
    if overlap:
        raise ValueError(
            f"scheduler_kwargs shadow request fields: "
            f"{', '.join(sorted(overlap))}"
        )
    kwargs.update(extra)
    return method, kwargs


def exception_status(exc: BaseException) -> Tuple[int, str, Optional[float]]:
    """Map a planning exception to ``(http_status, message, retry_after)``.

    The one place HTTP semantics are decided: the threading server, the
    asyncio front-end, and the shard workers (which ship the mapping across
    the process boundary as plain data) all call this, so a given failure
    produces the same status code everywhere.
    """
    if isinstance(exc, KeyError):
        return 404, str(exc.args[0] if exc.args else exc), None
    if isinstance(exc, ServiceOverloaded):
        return 429, str(exc), exc.retry_after
    if isinstance(exc, TimeoutError):
        return (
            504,
            "request timed out; the plan is still being computed — "
            "retrying will likely hit the cache",
            1.0,
        )
    if isinstance(exc, InfeasibleError):
        return 422, str(exc), None
    if isinstance(exc, (ReproError, TypeError, ValueError)):
        return 400, str(exc), None
    raise exc  # genuinely unexpected: let it surface as a bug


def execute_request(
    service: "PlanningService", method: str, kwargs: Mapping[str, Any]
) -> Tuple[int, Dict[str, Any]]:
    """Run one parsed request and fold the outcome into ``(status, doc)``.

    The shard workers and the asyncio front-end's in-process backend both
    serve through this, so an HTTP response is decided by exactly one code
    path whether the service lives in this process or across a pipe —
    failures travel as plain ``{"error": ..., "retry_after": ...}`` data
    that any transport can carry.  Exceptions :func:`exception_status`
    refuses to map (genuine bugs) come back as 500 rather than killing a
    worker loop.
    """
    try:
        response = getattr(service, method)(**kwargs)
    except Exception as exc:
        try:
            status, message, retry_after = exception_status(exc)
        except BaseException:
            status, message, retry_after = (
                500, f"internal error: {type(exc).__name__}: {exc}", None
            )
        doc: Dict[str, Any] = {"error": message}
        if retry_after is not None:
            doc["retry_after"] = retry_after
        return status, doc
    t0 = time.perf_counter()
    doc = response.as_doc()
    service.telemetry.observe("stage.serialize", time.perf_counter() - t0)
    return 200, doc


def read_warm_file(path: str) -> List[Dict[str, Any]]:
    """Parse a ``--warm`` file: a JSON array of request bodies.

    Each entry is a ``POST /plan`` body (``deadline`` required), optionally
    carrying ``"op": "plan_many"`` to warm through the batch API instead.
    Entries are validated through :func:`parse_plan_request` up front so a
    typo fails at boot, not silently mid-warm-up.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, list):
        raise ValueError(f"{path}: a warm file is a JSON array of "
                         "request bodies")
    configs: List[Dict[str, Any]] = []
    for i, entry in enumerate(doc):
        if not isinstance(entry, dict):
            raise ValueError(f"{path}[{i}]: each warm entry is an object")
        entry = dict(entry)
        op = entry.pop("op", "plan")
        if op not in ("plan", "plan_many"):
            raise ValueError(f"{path}[{i}]: unknown op {op!r}")
        parse_plan_request(
            "/plan" if op == "plan" else "/plan_many", entry
        )
        entry["op"] = op
        configs.append(entry)
    return configs


class LatencyRecorder:
    """Bounded per-endpoint request-latency reservoir with percentiles.

    Keeps the most recent ``window`` samples per endpoint (an old-sample
    reservoir would misreport a service whose latency shifted an hour ago)
    and reports p50/p95/p99 through :func:`repro.obs.metrics.percentile`.
    Thread-safe; recording is append-to-deque cheap.
    """

    def __init__(self, window: int = 2048) -> None:
        if window < 1:
            raise ValueError(f"latency window must be >= 1, got {window}")
        self._window = int(window)
        self._lock = threading.Lock()
        self._samples: Dict[str, deque] = {}
        self._counts: Dict[str, int] = {}

    def record(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            q = self._samples.get(endpoint)
            if q is None:
                q = self._samples[endpoint] = deque(maxlen=self._window)
            q.append(seconds)
            self._counts[endpoint] = self._counts.get(endpoint, 0) + 1

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """``{endpoint: {count, window, p50_ms, p95_ms, p99_ms, max_ms}}``."""
        with self._lock:
            snap = {k: list(v) for k, v in self._samples.items()}
            counts = dict(self._counts)
        doc: Dict[str, Dict[str, float]] = {}
        for endpoint, values in snap.items():
            doc[endpoint] = {
                "count": float(counts.get(endpoint, len(values))),
                "window": float(len(values)),
                "p50_ms": percentile(values, 50.0) * 1e3,
                "p95_ms": percentile(values, 95.0) * 1e3,
                "p99_ms": percentile(values, 99.0) * 1e3,
                "max_ms": max(values) * 1e3,
            }
        return doc


class PlanningService:
    """Cache- and batch-backed broadcast planning over named traces.

    Parameters
    ----------
    traces:
        Mapping of name → trace, either backend: a dict-backed
        :class:`~repro.traces.model.ContactTrace` or a columnar
        :class:`~repro.traces.store.ContactStore` (e.g. loaded from a
        ``.ctrace`` file, whose persisted fingerprint makes cache keys
        O(1)).  The names are what ``POST /plan`` requests reference.
        More can be registered later with :meth:`add_trace`.
    cache:
        Plan cache to consult/populate; defaults to a fresh in-memory
        :class:`PlanCache`.
    batcher:
        Request batcher; defaults to a fresh :class:`Batcher` built from
        ``workers`` / ``max_batch`` / ``max_wait`` / ``max_queue``.
    timeout:
        Default seconds a :meth:`plan` call waits for its batched result
        before raising :class:`TimeoutError` (HTTP 504).
    tveg_capacity:
        Bound on the shared-TVEG registry; least recently used graphs are
        dropped past it (their plans stay cached).
    """

    def __init__(
        self,
        traces: Optional[Mapping[str, ContactTrace]] = None,
        *,
        cache: Optional[PlanCache] = None,
        batcher: Optional[Batcher] = None,
        workers: Optional[int] = None,
        max_batch: int = 32,
        max_wait: float = 0.005,
        max_queue: int = 256,
        timeout: float = 30.0,
        tveg_capacity: int = 16,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if tveg_capacity < 1:
            raise ValueError(
                f"tveg_capacity must be >= 1, got {tveg_capacity}"
            )
        self._traces: Dict[str, ContactTrace] = dict(traces or {})
        self._cache = cache if cache is not None else PlanCache()
        # Streaming request telemetry: per-stage and per-endpoint latency
        # histograms plus outcome counters, mergeable across shard
        # processes and rendered by both /metrics representations.
        self.telemetry = MetricsRegistry()
        self._batcher = batcher if batcher is not None else Batcher(
            workers=workers, max_batch=max_batch, max_wait=max_wait,
            max_queue=max_queue, metrics=self.telemetry,
        )
        self._timeout = float(timeout)
        self._tvegs: "OrderedDict[Tuple, TVEG]" = OrderedDict()
        self._tveg_capacity = int(tveg_capacity)
        self._lock = threading.Lock()
        self._started = time.time()
        self._requests = 0
        self._errors = 0
        self._latency = LatencyRecorder()

    # ------------------------------------------------------------------
    @property
    def cache(self) -> PlanCache:
        return self._cache

    @property
    def batcher(self) -> Batcher:
        return self._batcher

    def trace_names(self) -> List[str]:
        with self._lock:
            return sorted(self._traces)

    def add_trace(self, name: str, trace: ContactTrace) -> None:
        """Register (or replace) a named trace."""
        with self._lock:
            self._traces[name] = trace

    def close(self) -> None:
        """Shut the batcher down; in-flight requests finish first."""
        self._batcher.close()

    def __enter__(self) -> "PlanningService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _resolve_trace(self, name: Optional[str]) -> ContactTrace:
        with self._lock:
            if name is None:
                if len(self._traces) == 1:
                    return next(iter(self._traces.values()))
                raise KeyError(
                    "request names no trace and the service hosts "
                    f"{len(self._traces)} — pass \"trace\""
                )
            try:
                return self._traces[name]
            except KeyError:
                raise KeyError(
                    f"unknown trace {name!r}; hosted: "
                    f"{', '.join(sorted(self._traces)) or '(none)'}"
                ) from None

    def _shared_tveg(
        self,
        name: Optional[str],
        trace: ContactTrace,
        channel: str,
        window: Optional[Any],
        deadline: float,
        seed,
    ) -> TVEG:
        """The one TVEG every request with this (trace, channel, window,
        seed) shares — so their NodeSweep/DCS cost work amortizes."""
        if window is not None:
            if isinstance(window, (int, float)):
                start, end = float(window), float(window) + deadline
            else:
                start, end = float(window[0]), float(window[1])
            bounds: Optional[Tuple[float, float]] = (start, end)
        else:
            bounds = None
        regkey = (name, trace.fingerprint(), channel, bounds, seed)
        with self._lock:
            tveg = self._tvegs.get(regkey)
            if tveg is not None:
                self._tvegs.move_to_end(regkey)
                return tveg
        if bounds is not None:
            trace = trace.restrict_window(*bounds).shift(-bounds[0])
        tveg = tveg_from_trace(trace, channel, seed=seed)
        with self._lock:
            tveg = self._tvegs.setdefault(regkey, tveg)
            self._tvegs.move_to_end(regkey)
            while len(self._tvegs) > self._tveg_capacity:
                self._tvegs.popitem(last=False)
        return tveg

    def plan(
        self,
        trace: Optional[str] = None,
        deadline: float = 2000.0,
        *,
        source=None,
        algorithm: str = "eedcb",
        channel: str = "static",
        window=None,
        seed=None,
        compute: Optional[str] = None,
        timeout: Optional[float] = None,
        **scheduler_kwargs,
    ) -> PlanResponse:
        """Plan one broadcast through the cache and the batch queue.

        ``compute`` selects the kernel implementation (``"auto"`` /
        ``"python"`` / ``"numpy"``, see :mod:`repro.compute`); it never
        enters the cache key because every value yields byte-identical
        plans.

        Raises :class:`KeyError` for an unknown trace name,
        :class:`~repro.errors.ServiceOverloaded` when admission control
        turns the request away, :class:`TimeoutError` when the result
        doesn't arrive within ``timeout`` seconds (the computation still
        completes and populates the cache), and whatever the planner
        itself raises (e.g. :class:`~repro.errors.InfeasibleError`).
        """
        t0 = time.perf_counter()
        with self._lock:
            self._requests += 1
        base = self._resolve_trace(trace)
        deadline = float(deadline)
        tveg = self._shared_tveg(trace, base, channel, window, deadline, seed)
        key = plan_cache_key(
            tveg, source, deadline, algorithm=algorithm, seed=seed,
            **scheduler_kwargs,
        )
        cached = key in self._cache

        def run() -> BroadcastPlan:
            return plan_broadcast(
                tveg, source, deadline, algorithm=algorithm, seed=seed,
                cache=self._cache, compute=compute, **scheduler_kwargs,
            )

        try:
            future = self._batcher.submit(key, run)
            plan = future.result(
                timeout=self._timeout if timeout is None else timeout
            )
        except BaseException:
            with self._lock:
                self._errors += 1
            self.telemetry.inc("service.plan_errors")
            raise
        wall = time.perf_counter() - t0
        self._latency.record("plan", wall)
        self.telemetry.observe("request.plan", wall)
        return PlanResponse(plan=plan, key=key, cached=cached,
                            wall_seconds=wall)

    def plan_many(
        self,
        trace: Optional[str] = None,
        deadlines=2000.0,
        *,
        sources,
        algorithm: str = "eedcb",
        channel: str = "static",
        window=None,
        seed=None,
        compute: Optional[str] = None,
        **scheduler_kwargs,
    ) -> PlanSetResponse:
        """Plan a batch of broadcasts over one shared instance.

        ``sources`` is the per-request source list (``None`` entries
        auto-pick); ``deadlines`` is a scalar applied to every request or
        a sequence running parallel to ``sources``.  Each request keys the
        plan cache exactly as the equivalent :meth:`plan` call would, so
        batch and single requests share hits both ways.

        The batch runs inline through :func:`repro.plan_broadcast_many`
        rather than the batch queue: the point of the batch API is
        amortizing graph construction across the member requests, which a
        per-request queue would undo.  Deduplication against concurrent
        single requests still happens at the plan cache.
        """
        t0 = time.perf_counter()
        src_list = list(sources)
        if isinstance(deadlines, (int, float)):
            dl_list = [float(deadlines)] * len(src_list)
        else:
            dl_list = [float(d) for d in deadlines]
            if len(dl_list) != len(src_list):
                raise ValueError(
                    f"plan_many got {len(src_list)} source(s) but "
                    f"{len(dl_list)} deadline(s)"
                )
        if not src_list:
            raise ValueError("plan_many needs at least one source")
        with self._lock:
            self._requests += len(src_list)
        try:
            base = self._resolve_trace(trace)
            # Group requests sharing one registry TVEG.  With a scalar
            # window the bounds — hence the graph — depend on the
            # deadline; otherwise every request shares a single graph.
            groups: "OrderedDict[Optional[float], List[int]]" = OrderedDict()
            scalar_window = isinstance(window, (int, float))
            for i, d in enumerate(dl_list):
                groups.setdefault(d if scalar_window else None, []).append(i)
            plans: List[Optional[BroadcastPlan]] = [None] * len(src_list)
            keys: List[str] = [""] * len(src_list)
            cached: List[bool] = [False] * len(src_list)
            for idxs in groups.values():
                tveg = self._shared_tveg(
                    trace, base, channel, window, dl_list[idxs[0]], seed
                )
                for i in idxs:
                    keys[i] = plan_cache_key(
                        tveg, src_list[i], dl_list[i], algorithm=algorithm,
                        seed=seed, **scheduler_kwargs,
                    )
                    cached[i] = keys[i] in self._cache
                planset = plan_broadcast_many(
                    tveg,
                    [src_list[i] for i in idxs],
                    [dl_list[i] for i in idxs],
                    algorithm=algorithm, seed=seed, cache=self._cache,
                    compute=compute, **scheduler_kwargs,
                )
                for i, plan in zip(idxs, planset):
                    plans[i] = plan
        except BaseException:
            with self._lock:
                self._errors += 1
            self.telemetry.inc("service.plan_many_errors")
            raise
        wall = time.perf_counter() - t0
        self._latency.record("plan_many", wall)
        self.telemetry.observe("request.plan_many", wall)
        return PlanSetResponse(
            planset=BroadcastPlanSet(plans=tuple(plans)),
            keys=tuple(keys),
            cached=tuple(cached),
            wall_seconds=wall,
        )

    def warm(self, configs: Iterable[Mapping[str, Any]]) -> Dict[str, int]:
        """Replay a list of request bodies to prime the plan cache.

        Each config is a ``POST /plan`` body (optionally ``"op":
        "plan_many"``) as produced by :func:`read_warm_file`.  A config
        whose trace is unknown or whose instance is infeasible counts as
        failed rather than aborting the warm-up — a stale warm file must
        never prevent the service from booting.  Returns
        ``{"warmed": n, "failed": n}``.
        """
        warmed = failed = 0
        for config in configs:
            body = dict(config)
            op = body.pop("op", "plan")
            try:
                method, kwargs = parse_plan_request(
                    "/plan" if op == "plan" else "/plan_many", body
                )
                getattr(self, method)(**kwargs)
                warmed += 1
            except Exception:
                failed += 1
        return {"warmed": warmed, "failed": failed}

    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, Any]:
        """Everything ``GET /metrics`` serves, one JSON-ready document."""
        with self._lock:
            requests, errors = self._requests, self._errors
            traces = sorted(self._traces)
            shared = len(self._tvegs)
        return {
            "uptime_seconds": time.time() - self._started,
            "requests": requests,
            "errors": errors,
            "traces": traces,
            "shared_tvegs": shared,
            "cache": self._cache.stats(),
            "batcher": self._batcher.stats(),
            "latency": self._latency.as_dict(),
            "telemetry": self.telemetry.as_doc(),
        }

    def healthz(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self._started,
            "queue_depth": self._batcher.queue_depth,
            "traces": self.trace_names(),
        }


# ----------------------------------------------------------------------
# HTTP front-end
# ----------------------------------------------------------------------


class _PlanningServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the service for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: PlanningService):
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # quiet by default; the CLI's -v wires a logger in
    def log_message(self, format: str, *args: Any) -> None:
        logger = getattr(self.server, "logger", None)
        if logger is not None:
            logger.info("%s " + format, self.address_string(), *args)

    # -- helpers -------------------------------------------------------
    def _send_json(
        self,
        status: int,
        doc: Mapping[str, Any],
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str, **extra: Any) -> None:
        doc = {"error": message}
        headers = {}
        retry_after = extra.pop("retry_after", None)
        if retry_after is not None:
            headers["Retry-After"] = str(int(max(1, retry_after)))
            doc["retry_after"] = retry_after
        doc.update(extra)
        self._send_json(status, doc, headers)

    def _send_text(
        self,
        status: int,
        body: str,
        content_type: str,
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        raw = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(raw)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(raw)

    # -- endpoints -----------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        service: PlanningService = self.server.service
        path = self.path.partition("?")[0]
        if path == "/healthz":
            self._send_json(200, service.healthz())
        elif path == "/metrics":
            # Content negotiation: the JSON document stays the default
            # (and stays byte-identical for existing clients); a scraper
            # sending Accept: text/plain gets Prometheus exposition text.
            doc = service.metrics()
            if wants_prometheus(self.headers.get("Accept")):
                self._send_text(
                    200, render_prometheus(doc), PROMETHEUS_CONTENT_TYPE
                )
            else:
                self._send_json(200, doc)
        elif path == "/cache/stats":
            self._send_json(200, service.cache.stats())
        else:
            self._send_error(404, f"no such endpoint: {self.path}")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        service: PlanningService = self.server.service
        # Trace context is minted at the edge; an upstream-supplied
        # X-Request-Id wins so proxies keep their correlation ids.
        rid = self.headers.get("X-Request-Id") or obs.new_request_id()
        with obs.request_context(rid):
            try:
                length = int(self.headers.get("Content-Length") or 0)
                raw = self.rfile.read(length) if length else b"{}"
                body = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                self._send_error(400, f"bad request body: {exc}")
                return
            try:
                method, kwargs = parse_plan_request(self.path, body)
            except KeyError as exc:
                self._send_error(404, str(exc.args[0] if exc.args else exc))
                return
            except ValueError as exc:
                self._send_error(400, str(exc))
                return
            try:
                response = getattr(service, method)(**kwargs)
            except Exception as exc:
                status, message, retry_after = exception_status(exc)
                self._send_error(status, message, retry_after=retry_after)
            else:
                self._send_json(
                    200, response.as_doc(), {"X-Request-Id": rid}
                )


def make_server(
    service: PlanningService,
    host: str = "127.0.0.1",
    port: int = 8437,
) -> ThreadingHTTPServer:
    """A bound (not yet serving) HTTP server wrapping ``service``.

    ``port=0`` binds an ephemeral port — the tests' pattern::

        srv = make_server(service, port=0)
        threading.Thread(target=srv.serve_forever, daemon=True).start()
        url = "http://%s:%d" % srv.server_address
        ...
        srv.shutdown(); service.close()
    """
    return _PlanningServer((host, port), service)


def serve(
    service: PlanningService,
    host: str = "127.0.0.1",
    port: int = 8437,
) -> None:
    """Serve until interrupted, then shut down cleanly (blocking call)."""
    srv = make_server(service, host, port)
    try:
        srv.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        srv.server_close()
        service.close()

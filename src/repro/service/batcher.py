"""Batched scheduling queue: group, dedupe, and amortize plan requests.

Serving traffic one request at a time wastes exactly the work this package
spent PR 4 making fast to do *once*: the compact auxiliary-graph build and
the :class:`~repro.temporal.sweep.NodeSweep` timeline pass.  Concurrent
requests against the same TVEG share those through the graph's DCS / cost
caches — but only if they run in one process against one TVEG object, and
only the *first* of K identical requests needs to run at all.

:class:`Batcher` provides both amortizations:

* requests enqueue as ``(key, compute)`` pairs and return a
  :class:`concurrent.futures.Future`;
* a flush collects everything queued (up to ``max_batch``, waiting at most
  ``max_wait`` seconds for stragglers after the first arrival), groups it
  by content-address key, and executes **one compute per unique key** on a
  bounded thread pool (:func:`repro.parallel.thread_map` — threads, not
  processes, so every job shares the live TVEG caches, plan cache, and obs
  state); duplicates get the leader's result fanned out to their futures.
  A batch of K identical requests therefore performs exactly one
  auxiliary-graph build — the property the service smoke test asserts via
  the ``auxgraph.compact_builds`` counter.

Admission control is the queue bound: ``submit`` on a full queue raises
:class:`~repro.errors.ServiceOverloaded` immediately (the HTTP layer maps
it to 429 + ``Retry-After``) instead of letting latency grow without
bound.  Every flush emits an :data:`~repro.obs.EV_BATCH_FLUSHED` event and
``service.*`` counters.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from .. import obs
from ..errors import ServiceOverloaded
from ..obs.histogram import MetricsRegistry
from ..parallel import resolve_workers, thread_map

__all__ = ["Batcher", "BatcherStats"]


@dataclass
class BatcherStats:
    """Counters one :class:`Batcher` accumulated since construction."""

    submitted: int = 0
    rejected: int = 0
    batches: int = 0
    executed: int = 0
    deduped: int = 0
    failures: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "batches": self.batches,
            "executed": self.executed,
            "deduped": self.deduped,
            "failures": self.failures,
        }


@dataclass
class _Job:
    key: str
    compute: Callable[[], Any]
    future: "Future[Any]"
    # Trace context travels with the job, not the thread: the submitter's
    # request id re-enters scope on the flush pool so the compute's ledger
    # events stay attributable, and the enqueue timestamp feeds the
    # queue-wait histogram.
    request_id: Optional[str] = None
    enqueued_at: float = 0.0


class Batcher:
    """A bounded request queue with per-batch dedupe and a worker pool.

    Parameters
    ----------
    workers:
        Thread-pool width for executing a batch's *unique* jobs
        (normalized by :func:`repro.parallel.resolve_workers`; the GIL
        serializes pure-Python scheduling work, so the pool mainly overlaps
        distinct jobs' I/O and keeps batch latency bounded — the real wins
        are dedupe and the shared caches).
    max_batch:
        Most requests drained per flush.
    max_wait:
        Seconds the flush loop lingers after the first request arrives,
        letting concurrent duplicates pile into the same batch.
    max_queue:
        Admission bound; ``submit`` past it raises
        :class:`~repro.errors.ServiceOverloaded`.  ``0`` means unbounded.
    metrics:
        Optional :class:`~repro.obs.histogram.MetricsRegistry` receiving
        the ``stage.queue_wait`` / ``stage.batch_wait`` /
        ``stage.compute`` histograms (a private registry when omitted).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        max_batch: int = 32,
        max_wait: float = 0.005,
        max_queue: int = 256,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self._workers = resolve_workers(workers)
        self._max_batch = int(max_batch)
        self._max_wait = float(max_wait)
        self._queue: "queue.Queue[Optional[_Job]]" = queue.Queue(
            maxsize=int(max_queue)
        )
        self._stats = BatcherStats()
        self._stats_lock = threading.Lock()
        # Stage-latency sink (queue_wait / batch_wait / compute); the
        # owning PlanningService passes its registry so all stages land
        # in one mergeable document.
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._closed = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-batcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently waiting (approximate, by nature of queues)."""
        return self._queue.qsize()

    def stats(self) -> Dict[str, Any]:
        with self._stats_lock:
            doc = self._stats.as_dict()
        doc["queue_depth"] = self.queue_depth
        doc["workers"] = self._workers
        doc["max_batch"] = self._max_batch
        doc["max_wait"] = self._max_wait
        doc["max_queue"] = self._queue.maxsize
        return doc

    def submit(self, key: str, compute: Callable[[], Any]) -> "Future[Any]":
        """Enqueue one request; the future resolves to ``compute()``'s
        result (or its exception), shared with every concurrent duplicate
        of ``key``.

        Raises :class:`~repro.errors.ServiceOverloaded` when the queue is
        at its admission bound, and after :meth:`close`.
        """
        if self._closed.is_set():
            raise ServiceOverloaded("planning service is shutting down")
        job = _Job(
            key=key,
            compute=compute,
            future=Future(),
            request_id=obs.current_request_id(),
            enqueued_at=time.monotonic(),
        )
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._stats_lock:
                self._stats.rejected += 1
            obs.counter("service.request_rejected")
            led = obs.get_ledger()
            if led.enabled:
                led.emit(
                    obs.EV_REQUEST_REJECTED, key=key, reason="queue_full",
                    queue_depth=self.queue_depth,
                )
            raise ServiceOverloaded(
                f"batch queue full ({self._queue.maxsize} pending)"
            ) from None
        with self._stats_lock:
            self._stats.submitted += 1
        if self._closed.is_set() and not self._thread.is_alive():
            # Raced a concurrent close(): the flush loop may already be gone,
            # so nothing would ever resolve this future.  Sweep the queue —
            # the job either fails with ServiceOverloaded here or was
            # legitimately flushed first; it never hangs.
            self._fail_pending(
                "planning service shut down before this request was scheduled"
            )
        return job.future

    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Stop accepting work, drain what's queued, and join the thread.

        Shutdown ordering guarantee: every future handed out by
        :meth:`submit` **resolves** — jobs the flush loop drains before
        exiting complete normally; anything still queued when the loop is
        gone (including stragglers that raced a concurrent ``submit``)
        fails with :class:`~repro.errors.ServiceOverloaded` rather than
        pending forever.  Safe to call more than once.
        """
        if not self._closed.is_set():
            self._closed.set()
            try:
                self._queue.put_nowait(None)  # wake the flush loop
            except queue.Full:
                pass
        self._thread.join(timeout=timeout)
        # The flush loop drains the queue before returning; this sweep only
        # matters when the join timed out (a compute is wedged) or a submit
        # raced the shutdown — either way the futures must not hang.
        self._fail_pending("planning service shut down before this request "
                           "was scheduled")

    def __enter__(self) -> "Batcher":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _fail_pending(self, reason: str) -> None:
        """Drain the queue, failing every remaining job's future.

        Runs only during shutdown.  A future that resolved concurrently
        (the flush loop got there first) is left untouched.
        """
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                return
            if job is None:
                continue
            try:
                job.future.set_exception(ServiceOverloaded(reason))
            except Exception:  # already resolved by a racing flush
                continue
            with self._stats_lock:
                self._stats.rejected += 1
            obs.counter("service.request_rejected")

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            batch = self._collect()
            if batch:
                self._flush(batch)
            elif self._closed.is_set() and self._queue.empty():
                return

    def _collect(self) -> List[_Job]:
        """Block for the first job, then linger ``max_wait`` for company."""
        try:
            first = self._queue.get(timeout=0.1)
        except queue.Empty:
            return []
        if first is None:
            return []
        batch = [first]
        deadline = time.monotonic() + self._max_wait
        while len(batch) < self._max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                job = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if job is None:
                break
            batch.append(job)
        return batch

    def _flush(self, batch: List[_Job]) -> None:
        groups: "Dict[str, List[_Job]]" = {}
        for job in batch:
            groups.setdefault(job.key, []).append(job)
        leaders = [jobs[0] for jobs in groups.values()]

        flush_started = time.monotonic()
        metrics = self._metrics
        for job in batch:
            metrics.observe("stage.queue_wait", flush_started - job.enqueued_at)

        def run(leader: _Job) -> Any:
            started = time.monotonic()
            metrics.observe("stage.batch_wait", started - flush_started)
            # Re-enter the leader's request scope on this pool thread so the
            # compute's cache/plan events carry the originating request id.
            # Jobs submitted outside any request scope run without one —
            # no id is invented for them.
            if leader.request_id is not None:
                ctx: Any = obs.request_context(leader.request_id)
            else:
                ctx = nullcontext()
            with ctx:
                try:
                    result = leader.compute()
                except BaseException as exc:  # delivered via the futures
                    metrics.observe(
                        "stage.compute", time.monotonic() - started
                    )
                    return _Failure(exc)
            metrics.observe("stage.compute", time.monotonic() - started)
            return result

        results = thread_map(run, leaders, workers=self._workers)

        failures = 0
        for leader, result in zip(leaders, results):
            for job in groups[leader.key]:
                if isinstance(result, _Failure):
                    job.future.set_exception(result.exc)
                else:
                    job.future.set_result(result)
            if isinstance(result, _Failure):
                failures += 1

        deduped = len(batch) - len(leaders)
        with self._stats_lock:
            self._stats.batches += 1
            self._stats.executed += len(leaders)
            self._stats.deduped += deduped
            self._stats.failures += failures
        obs.counter("service.batches")
        obs.counter("service.batched_requests", len(batch))
        if deduped:
            obs.counter("service.deduped_requests", deduped)
        led = obs.get_ledger()
        if led.enabled:
            # Per-group request attribution: each key maps to the ids of
            # every request that rode this flush, leader first — the ledger
            # record that lets a dedupe victim find whose compute served it.
            flush_groups = {
                key: [j.request_id for j in jobs if j.request_id is not None]
                for key, jobs in groups.items()
            }
            led.emit(
                obs.EV_BATCH_FLUSHED, size=len(batch), unique=len(leaders),
                deduped=deduped, failures=failures,
                groups={k: v for k, v in flush_groups.items() if v},
            )


@dataclass
class _Failure:
    """Wrapper distinguishing a compute's exception from a result of any
    type (including exceptions legitimately *returned*)."""

    exc: BaseException

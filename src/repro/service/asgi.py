"""Asyncio HTTP front-end: thousands of connections, one event loop.

The original ``ThreadingHTTPServer`` front-end spends a thread per
connection and — worse — writes headers and body as separate TCP
segments, which on loopback interacts with Nagle + delayed ACKs into
tens of milliseconds of stall per request.  This front-end is a
single-threaded ``asyncio`` server that:

* parses HTTP/1.1 with keep-alive and answers with **one** ``write()``
  of a fully assembled response buffer, with ``TCP_NODELAY`` set — the
  transport never waits for an ACK that isn't coming;
* accepts as many concurrent connections as the OS will hand it — a
  connection costs a coroutine, not a thread;
* forwards planning work to a **backend** — :class:`LocalBackend`
  wrapping one in-process :class:`~repro.service.server.PlanningService`,
  or a :class:`~repro.service.shard.ShardPool` of worker processes —
  and applies the backend's per-shard backpressure verbatim
  (:class:`~repro.errors.ServiceOverloaded` → 429 + ``Retry-After``,
  waited-too-long → 504);
* keeps an **edge response cache**: the serialized ``plan`` fragment of
  recent ``/plan`` answers, keyed by the request's routing address.
  Plans are deterministic, so a repeat configuration's response bytes
  are known before any worker is consulted — the envelope is assembled
  around the cached fragment byte-identically to a fresh serialization
  (``cached`` is honestly ``true``: the plan *was* served from cache).

Graceful drain: :meth:`AsyncPlanningServer.drain` stops accepting,
waits for in-flight requests, then drains the backend (shards flush
their stats and exit).  The CLI wires SIGTERM/SIGINT to it.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from .. import obs
from ..errors import ServiceOverloaded
from ..obs.histogram import MetricsRegistry
from ..obs.promtext import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
    wants_prometheus,
)
from ..traces.model import ContactTrace
from .router import routing_key
from .server import (
    PlanningService,
    exception_status,
    execute_request,
    parse_plan_request,
)

__all__ = ["AsyncPlanningServer", "BackgroundServer", "LocalBackend"]

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not "
    "Allowed", 408: "Request Timeout", 413: "Payload Too Large",
    422: "Unprocessable Entity", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: request head (request line + headers) size bound
_MAX_HEAD = 64 * 1024
#: request body size bound — a plan request is a small JSON object
_MAX_BODY = 8 * 1024 * 1024


class LocalBackend:
    """The single-process deployment shape behind the async front-end.

    Wraps one :class:`~repro.service.server.PlanningService` and exposes
    the same surface :class:`~repro.service.shard.ShardPool` does —
    ``submit_request`` (a :class:`concurrent.futures.Future` of
    ``(status, doc)``), ``routing``, the control-plane docs, ``warm``,
    and ``drain`` — so the server code never branches on deployment.
    Requests run on a bounded thread pool (they block on the batcher);
    admission past ``max_inflight`` raises
    :class:`~repro.errors.ServiceOverloaded` exactly like a saturated
    shard would.
    """

    def __init__(
        self,
        service: PlanningService,
        traces: Mapping[str, ContactTrace],
        *,
        max_inflight: int = 64,
        request_threads: int = 16,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.service = service
        self._traces = dict(traces)
        self._max_inflight = int(max_inflight)
        self._inflight = 0
        self._lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, request_threads),
            thread_name_prefix="repro-local-backend",
        )

    @property
    def shards(self) -> int:
        return 0

    def routing(self, method: str, kwargs: Mapping[str, Any]) -> str:
        trace = self.service._resolve_trace(kwargs.get("trace"))
        return routing_key(trace, method, kwargs)

    def submit_request(
        self,
        method: str,
        kwargs: Mapping[str, Any],
        key: Optional[str] = None,
    ) -> Tuple[int, Any]:
        with self._lock:
            if self._inflight >= self._max_inflight:
                raise ServiceOverloaded(
                    f"service at capacity ({self._max_inflight} requests "
                    "in flight)"
                )
            self._inflight += 1

        # Capture the edge's request id here (the event-loop task holds
        # the context); the pool thread re-enters it so in-process serving
        # is attributable exactly like a shard worker's.
        request_id = obs.current_request_id()

        def run() -> Tuple[int, Dict[str, Any]]:
            try:
                if request_id is not None:
                    with obs.request_context(request_id):
                        return execute_request(self.service, method, kwargs)
                return execute_request(self.service, method, kwargs)
            finally:
                with self._lock:
                    self._inflight -= 1

        return 0, self._pool.submit(run)

    def metrics(self) -> Dict[str, Any]:
        doc = self.service.metrics()
        doc["mode"] = "local"
        doc["inflight"] = self._inflight
        return doc

    def healthz(self) -> Dict[str, Any]:
        doc = self.service.healthz()
        doc["inflight"] = self._inflight
        return doc

    def cache_stats(self) -> Dict[str, Any]:
        return self.service.cache.stats()

    def trace_names(self):
        return self.service.trace_names()

    def warm(self, configs: Iterable[Mapping[str, Any]]) -> Dict[str, int]:
        return self.service.warm(configs)

    def drain(self, timeout: float = 30.0) -> Any:
        self._pool.shutdown(wait=True)
        self.service.close()
        return [self.service.metrics()]


class _EdgeCache:
    """Bounded LRU of serialized ``/plan`` response fragments.

    Values are ``(cache_key, plan_fragment_bytes)``; the fragment is the
    exact ``json.dumps(doc["plan"], sort_keys=True)`` bytes a fresh
    response would embed, so assembling an envelope around it stays
    byte-identical to serving the request through a worker.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, Tuple[str, bytes]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional[Tuple[str, bytes]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, value: Tuple[str, bytes]) -> None:
        if self.capacity <= 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def stats(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }


def _plan_envelope(doc: Mapping[str, Any]) -> Tuple[bytes, bytes]:
    """Serialize a ``/plan`` response doc, returning ``(body, fragment)``.

    Assembled part-wise so the ``plan`` fragment is serialized exactly
    once and can be reused by the edge cache; the concatenation equals
    ``json.dumps(doc, sort_keys=True)`` byte-for-byte (keys ``cached`` <
    ``key`` < ``plan`` < ``wall_seconds`` are already sorted).
    """
    fragment = json.dumps(doc["plan"], sort_keys=True).encode("utf-8")
    body = b"".join((
        b'{"cached": ', b"true" if doc["cached"] else b"false",
        b', "key": ', json.dumps(doc["key"]).encode("utf-8"),
        b', "plan": ', fragment,
        b', "wall_seconds": ',
        json.dumps(doc["wall_seconds"]).encode("utf-8"),
        b"}",
    ))
    return body, fragment


def _edge_envelope(key: str, fragment: bytes, wall_seconds: float) -> bytes:
    return b"".join((
        b'{"cached": true, "key": ', json.dumps(key).encode("utf-8"),
        b', "plan": ', fragment,
        b', "wall_seconds": ', json.dumps(wall_seconds).encode("utf-8"),
        b"}",
    ))


class AsyncPlanningServer:
    """The asyncio HTTP server over one backend (local or sharded)."""

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 8437,
        *,
        timeout: float = 30.0,
        edge_cache: int = 1024,
        logger=None,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.backend = backend
        self._host = host
        self._port = port
        self._timeout = float(timeout)
        self._edge = _EdgeCache(edge_cache)
        self._logger = logger
        self._server: Optional[asyncio.AbstractServer] = None
        self._active_requests = 0
        self._served = 0
        self._errors = 0
        self._draining = False
        # Edge-side telemetry: parse/route stage latencies plus the
        # end-to-end wall of every POST (including edge-cache hits that
        # never reach a worker) — reported under /metrics "frontend".
        self.telemetry = MetricsRegistry()

    @property
    def served(self) -> int:
        """Requests answered (any status) since boot."""
        return self._served

    @property
    def errors(self) -> int:
        """Responses with status >= 400 since boot."""
        return self._errors

    def edge_stats(self) -> Dict[str, Any]:
        return self._edge.stats()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, self._host, self._port
        )

    @property
    def server_address(self) -> Tuple[str, int]:
        assert self._server is not None, "call start() first"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def serve_until(self, stop: "asyncio.Event") -> None:
        """Serve until ``stop`` is set, then drain gracefully."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.start_serving()
            await stop.wait()
            await self.drain()

    async def drain(self, timeout: float = 30.0) -> Any:
        """Stop accepting, finish in-flight requests, drain the backend."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while self._active_requests and loop.time() < deadline:
            await asyncio.sleep(0.01)
        finals = await loop.run_in_executor(
            None, lambda: self.backend.drain(timeout)
        )
        if self._logger is not None:
            self._logger.info(
                "drained: served=%d errors=%d edge=%s",
                self._served, self._errors, self._edge.stats(),
            )
        return finals

    # -- connection handling -------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
        try:
            # leftover carries bytes read past the end of one request —
            # the start of the next when a client pipelines — so
            # back-to-back requests on a keep-alive connection are
            # framed exactly and answered in order
            leftover = b""
            while True:
                request, leftover = await self._read_request(reader, leftover)
                if request is None:
                    break
                keep_alive = await self._respond(request, writer)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, leftover: bytes = b""
    ) -> Tuple[Optional[Tuple[str, str, Dict[str, str], bytes]], bytes]:
        """One parsed request plus any bytes read beyond it.

        Returns ``((verb, path, headers, body), leftover)`` — ``leftover``
        is the prefix of the *next* pipelined request when the client
        wrote several back-to-back — or ``(None, b"")`` at EOF or on an
        unparseable head.  ``leftover`` from the previous call must be
        fed back in so no bytes are dropped between requests.
        """
        head = leftover
        while b"\r\n\r\n" not in head:
            chunk = await reader.read(4096)
            if not chunk:
                return None, b""
            head += chunk
            if len(head) > _MAX_HEAD:
                return None, b""
        head, _, rest = head.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            return None, b""
        verb, path = parts[0], parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            return None, b""
        if length > _MAX_BODY:
            return None, b""
        body = rest
        while len(body) < length:
            chunk = await reader.read(length - len(body))
            if not chunk:
                return None, b""
            body += chunk
        return (verb, path, headers, body[:length]), body[length:]

    def _response_bytes(
        self,
        status: int,
        body: bytes,
        keep_alive: bool,
        extra_headers: Optional[Mapping[str, str]] = None,
    ) -> bytes:
        extra = dict(extra_headers or {})
        content_type = extra.pop("Content-Type", "application/json")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: " + ("keep-alive" if keep_alive else "close"),
        ]
        for name, value in extra.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + body

    async def _respond(
        self,
        request: Tuple[str, str, Dict[str, str], bytes],
        writer: asyncio.StreamWriter,
    ) -> bool:
        verb, path, headers, body = request
        keep_alive = headers.get("connection", "").lower() != "close"
        self._active_requests += 1
        rid: Optional[str] = None
        t0 = time.perf_counter()
        try:
            if verb == "POST":
                # Trace context is minted here, at the edge; an upstream
                # X-Request-Id wins so proxy correlation ids survive.
                rid = headers.get("x-request-id") or obs.new_request_id()
                with obs.request_context(rid):
                    status, payload, extra = await self._handle(
                        verb, path, headers, body
                    )
            else:
                status, payload, extra = await self._handle(
                    verb, path, headers, body
                )
        except Exception as exc:  # last-resort: never kill the connection loop
            self._errors += 1
            status, extra = 500, None
            payload = json.dumps(
                {"error": f"internal error: {type(exc).__name__}: {exc}"}
            ).encode("utf-8")
        finally:
            self._active_requests -= 1
        if rid is not None:
            extra = dict(extra or {})
            extra["X-Request-Id"] = rid
            self.telemetry.observe("request.edge", time.perf_counter() - t0)
        self._served += 1
        if status >= 400:
            self._errors += 1
        writer.write(self._response_bytes(status, payload, keep_alive, extra))
        await writer.drain()
        if self._logger is not None:
            self._logger.info("%s %s -> %d", verb, path, status)
        return keep_alive

    # -- request handling ----------------------------------------------
    def _error_doc(
        self, message: str, retry_after: Optional[float] = None
    ) -> Tuple[bytes, Optional[Dict[str, str]]]:
        doc: Dict[str, Any] = {"error": message}
        extra: Optional[Dict[str, str]] = None
        if retry_after is not None:
            doc["retry_after"] = retry_after
            extra = {"Retry-After": str(int(max(1, retry_after)))}
        return json.dumps(doc, sort_keys=True).encode("utf-8"), extra

    async def _handle(
        self, verb: str, path: str, headers: Mapping[str, str], body: bytes
    ) -> Tuple[int, bytes, Optional[Dict[str, str]]]:
        if verb == "GET":
            return await self._handle_get(path, headers)
        if verb != "POST":
            payload, extra = self._error_doc(f"method {verb} not allowed")
            return 405, payload, extra
        return await self._handle_post(path, body)

    async def _handle_get(
        self, path: str, headers: Mapping[str, str]
    ) -> Tuple[int, bytes, Optional[Dict[str, str]]]:
        loop = asyncio.get_running_loop()
        path = path.partition("?")[0]
        if path == "/healthz":
            doc = await loop.run_in_executor(None, self.backend.healthz)
        elif path == "/metrics":
            doc = await loop.run_in_executor(None, self.backend.metrics)
            doc["frontend"] = {
                "active_requests": self._active_requests,
                "served": self._served,
                "errors": self._errors,
                "edge_cache": self._edge.stats(),
                "telemetry": self.telemetry.as_doc(),
            }
            if wants_prometheus(headers.get("accept")):
                # Same document, negotiated representation: Prometheus
                # exposition text.  JSON clients see identical bytes to
                # what they always got.
                text = render_prometheus(doc)
                return 200, text.encode("utf-8"), {
                    "Content-Type": PROMETHEUS_CONTENT_TYPE,
                }
        elif path == "/cache/stats":
            doc = await loop.run_in_executor(None, self.backend.cache_stats)
        else:
            payload, extra = self._error_doc(f"no such endpoint: {path}")
            return 404, payload, extra
        return 200, json.dumps(doc, sort_keys=True).encode("utf-8"), None

    async def _handle_post(
        self, path: str, body: bytes
    ) -> Tuple[int, bytes, Optional[Dict[str, str]]]:
        t0 = asyncio.get_running_loop().time()
        t_parse = time.perf_counter()
        try:
            parsed = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError) as exc:
            payload, extra = self._error_doc(f"bad request body: {exc}")
            return 400, payload, extra
        try:
            method, kwargs = parse_plan_request(path, parsed)
        except KeyError as exc:
            payload, extra = self._error_doc(
                str(exc.args[0] if exc.args else exc)
            )
            return 404, payload, extra
        except ValueError as exc:
            payload, extra = self._error_doc(str(exc))
            return 400, payload, extra
        self.telemetry.observe("stage.edge_parse", time.perf_counter() - t_parse)
        if self._draining:
            payload, extra = self._error_doc(
                "service is draining", retry_after=1.0
            )
            return 503, payload, extra

        t_route = time.perf_counter()
        try:
            key = self.backend.routing(method, kwargs)
        except KeyError as exc:
            payload, extra = self._error_doc(
                str(exc.args[0] if exc.args else exc)
            )
            return 404, payload, extra
        self.telemetry.observe("stage.route", time.perf_counter() - t_route)

        if method == "plan":
            hit = self._edge.get(key)
            if hit is not None:
                cache_key, fragment = hit
                wall = asyncio.get_running_loop().time() - t0
                return 200, _edge_envelope(cache_key, fragment, wall), None

        try:
            _, future = self.backend.submit_request(method, kwargs, key=key)
        except ServiceOverloaded as exc:
            _, message, retry_after = exception_status(exc)
            payload, extra = self._error_doc(message, retry_after)
            return 429, payload, extra
        try:
            status, doc = await asyncio.wait_for(
                asyncio.wrap_future(future), timeout=self._timeout
            )
        except asyncio.TimeoutError:
            payload, extra = self._error_doc(
                "request timed out; the plan is still being computed — "
                "retrying will likely hit the cache",
                retry_after=1.0,
            )
            return 504, payload, extra

        if status != 200:
            retry_after = doc.get("retry_after")
            extra = (
                {"Retry-After": str(int(max(1, retry_after)))}
                if retry_after is not None else None
            )
            return status, json.dumps(doc, sort_keys=True).encode("utf-8"), extra

        if method == "plan":
            payload, fragment = _plan_envelope(doc)
            self._edge.put(key, (doc["key"], fragment))
            return 200, payload, None
        return 200, json.dumps(doc, sort_keys=True).encode("utf-8"), None


class BackgroundServer:
    """An :class:`AsyncPlanningServer` on its own event-loop thread.

    The embedding (and test) convenience::

        srv = BackgroundServer(LocalBackend(service, traces), port=0)
        host, port = srv.address
        ...
        srv.stop()          # graceful drain, joins the thread
    """

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 0,
        **server_kwargs: Any,
    ) -> None:
        self.server = AsyncPlanningServer(
            backend, host, port, **server_kwargs
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional["asyncio.Event"] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-async-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("async server failed to start in time")

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            await self.server.serve_until(self._stop)

        asyncio.run(main())

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.server_address

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60.0)

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

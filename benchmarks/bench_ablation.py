"""Ablations of the design choices DESIGN.md calls out.

* **Steiner solver** — greedy incremental vs shortest-path tree vs Charikar
  level 2, measured on small instances against the exact oracle.
* **Energy allocation** — NLP (SLSQP-polished) vs coordinate descent only vs
  the closed form: how much of the fading energy does joint optimization
  recover?
* **DTS pruning** — auxiliary-graph size with and without the no-neighbor
  point pruning (correctness-preserving, see repro.dts.dts).
* **GREED power policy** — "cover" vs the paper-literal "min".
"""

import math

import numpy as np
import pytest

from repro.algorithms import make_scheduler
from repro.allocation import (
    build_allocation_problem,
    closed_form_allocation,
    solve_allocation,
)
from repro.auxgraph import build_aux_graph
from repro.dts import build_dts
from repro.errors import InfeasibleError
from repro.schedule import check_feasibility
from repro.traces import HaggleLikeConfig, haggle_like_trace, uniform_trace
from repro.tveg import tveg_from_trace


def _small_instances(n_instances=6, num_nodes=6, horizon=250.0):
    out = []
    for seed in range(n_instances):
        trace = uniform_trace(num_nodes, horizon, 70.0, 40.0, seed=seed)
        tveg = tveg_from_trace(trace, "static", seed=seed)
        try:
            opt = make_scheduler("oracle").run(tveg, 0, horizon)
        except InfeasibleError:
            continue
        out.append((tveg, horizon, opt.schedule.total_cost))
    return out


@pytest.mark.benchmark(group="ablation")
def test_steiner_method_quality(benchmark):
    """Approximation gap vs the oracle per Steiner method."""
    instances = _small_instances()
    assert len(instances) >= 3

    def run():
        gaps = {m: [] for m in ("greedy", "sptree", "charikar")}
        for tveg, deadline, opt_cost in instances:
            for method in gaps:
                sched = make_scheduler("eedcb", memt_method=method).schedule(
                    tveg, 0, deadline
                )
                assert check_feasibility(tveg, sched, 0, deadline).feasible
                gaps[method].append(sched.total_cost / opt_cost)
        return {m: float(np.mean(v)) for m, v in gaps.items()}

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nSteiner ablation — mean cost / optimal:", gaps)
    # every method is a valid approximation...
    for m, g in gaps.items():
        assert 1.0 - 1e-9 <= g <= 5.0
    # ...and the greedy solver must not lose to the plain SPT overall
    assert gaps["greedy"] <= gaps["sptree"] + 1e-9


@pytest.mark.benchmark(group="ablation")
def test_allocation_method_quality(benchmark):
    """Energy recovered by each allocation tier on fading backbones."""
    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=15), seed=31)
    window = trace.restrict_window(9000.0, 11000.0).shift(-9000.0)
    fading = tveg_from_trace(window, "rayleigh", seed=4)
    from repro.temporal.reachability import broadcast_feasible_sources

    sources = sorted(broadcast_feasible_sources(fading.tvg, 0.0, 2000.0))
    assert sources
    source = sources[0]
    backbone = make_scheduler("eedcb").schedule(fading, source, 2000.0)
    problem = build_allocation_problem(fading, backbone, source)

    def run():
        closed = float(closed_form_allocation(problem).sum())
        coord = solve_allocation(problem, use_slsqp=False).total
        full = solve_allocation(problem, use_slsqp=True).total
        return closed, coord, full

    closed, coord, full = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nAllocation ablation — closed: {closed:.3g}, "
        f"coordinate: {coord:.3g}, +SLSQP: {full:.3g}"
    )
    assert full <= coord + 1e-15 <= closed + 1e-12


@pytest.mark.benchmark(group="ablation")
def test_dts_pruning_size(benchmark):
    """Pruning shrinks the auxiliary graph without changing the schedule."""
    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=15), seed=77)
    window = trace.restrict_window(9000.0, 11000.0).shift(-9000.0)
    tveg = tveg_from_trace(window, "static", seed=9)
    from repro.temporal.reachability import broadcast_feasible_sources

    sources = sorted(broadcast_feasible_sources(tveg.tvg, 0.0, 2000.0))
    assert sources
    source = sources[0]

    def run():
        pruned_dts = build_dts(tveg.tvg, 2000.0, prune=True)
        unpruned_dts = build_dts(tveg.tvg, 2000.0, prune=False)
        a = build_aux_graph(tveg, source, 2000.0, pruned_dts)
        b = build_aux_graph(tveg, source, 2000.0, unpruned_dts)
        return a, b

    pruned, unpruned = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nDTS pruning ablation — aux nodes {pruned.num_nodes} (pruned) vs "
        f"{unpruned.num_nodes} (unpruned)"
    )
    assert pruned.num_nodes < unpruned.num_nodes
    # and both encodings yield feasible schedules of identical cost
    from repro.auxgraph import extract_schedule
    from repro.steiner import solve_memt

    s1 = extract_schedule(pruned, solve_memt(pruned.graph, pruned.root, pruned.terminals))
    s2 = extract_schedule(
        unpruned, solve_memt(unpruned.graph, unpruned.root, unpruned.terminals)
    )
    assert check_feasibility(tveg, s1, source, 2000.0).feasible
    assert check_feasibility(tveg, s2, source, 2000.0).feasible
    assert s1.total_cost <= s2.total_cost * 1.25 + 1e-18


@pytest.mark.benchmark(group="ablation")
def test_greed_power_policy(benchmark):
    """The "cover" policy vs the paper-literal "min" DCS level."""
    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=15), seed=55)
    window = trace.restrict_window(9000.0, 11000.0).shift(-9000.0)
    tveg = tveg_from_trace(window, "static", seed=2)
    from repro.temporal.reachability import broadcast_feasible_sources

    sources = sorted(broadcast_feasible_sources(tveg.tvg, 0.0, 2000.0))
    assert sources
    source = sources[0]

    def run():
        cover = make_scheduler("greed", power_policy="cover").run(tveg, source, 2000.0)
        minp = make_scheduler("greed", power_policy="min").run(tveg, source, 2000.0)
        return cover, minp

    cover, minp = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nGREED policy ablation — cover: cost {cover.schedule.total_cost:.3g} "
        f"({len(cover.schedule)} tx, {cover.info['informed']} informed); "
        f"min: cost {minp.schedule.total_cost:.3g} "
        f"({len(minp.schedule)} tx, {minp.info['informed']} informed)"
    )
    # "min" uses more, cheaper transmissions; both must make progress
    assert minp.info["informed"] >= 2
    assert cover.info["informed"] == tveg.num_nodes

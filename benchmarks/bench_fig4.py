"""Fig. 4 — delay–energy tradeoff of EEDCB / FR-EEDCB (both panels).

Regenerates the normalized-energy-vs-delay series for several network sizes
and checks the paper's two qualitative claims: energy falls as the delay
constraint loosens, and grows with N.
"""

import numpy as np
import pytest

from repro.experiments import print_sweep, run_fig4

from .conftest import BENCH_CONFIG, assert_mostly_decreasing, finite

NODE_COUNTS = (10, 20)
#: coarser than BENCH_DELAYS — the N=20 long-delay points dominate suite
#: runtime; endpoints and two interior points suffice for the trend checks
FIG4_DELAYS = (2000.0, 3000.0, 4500.0, 6000.0)


def _run(channel):
    return run_fig4(
        channel, BENCH_CONFIG, delays=FIG4_DELAYS, node_counts=NODE_COUNTS
    )


def _check(result):
    # energy ↓ with delay constraint — FR allocation totals vary several-fold
    # between windows, so at bench scale (3 windows per point) the trend is
    # asserted on the per-delay mean POOLED across the N series; the strict
    # per-curve claim is checked at documentation scale (EXPERIMENTS.md).
    pooled = [
        np.nanmean([result.series[name][i] for name in result.series])
        for i in range(len(result.x_values))
    ]
    assert_mostly_decreasing(pooled)


@pytest.mark.benchmark(group="fig4")
def test_fig4_static(benchmark):
    result = benchmark.pedantic(_run, args=("static",), rounds=1, iterations=1)
    print_sweep(result)
    _check(result)
    # energy ↑ with N: stable for the static scheduler (per-node costs add);
    # for FR the NLP's overlap savings make this untestable at bench scale
    # (asserted at documentation scale instead — see EXPERIMENTS.md).
    means = [np.nanmean(result.series[f"N={n}"]) for n in NODE_COUNTS]
    assert means[-1] > 0.8 * means[0], f"gross N-ordering inversion: {means}"


@pytest.mark.benchmark(group="fig4")
def test_fig4_fading(benchmark):
    result = benchmark.pedantic(_run, args=("rayleigh",), rounds=1, iterations=1)
    print_sweep(result)
    _check(result)

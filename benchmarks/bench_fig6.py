"""Fig. 6 — energy and delivery vs N, everything executed under fading.

The paper's qualitative result this bench pins down:

* delivery: FR-* ≈ 1.0 at every size; the static trio loses roughly a third
  of the nodes around N = 20 and degrades as N grows;
* energy: the FR variants pay a substantial premium over their static
  counterparts, and within each family EEDCB ≤ GREED/RAND.
"""

import numpy as np
import pytest

from repro.experiments import print_sweep, run_fig6

from .conftest import BENCH_CONFIG

NODE_COUNTS = (10, 15, 20)


@pytest.mark.benchmark(group="fig6")
def test_fig6_energy_and_delivery(benchmark):
    energy, delivery = benchmark.pedantic(
        run_fig6, args=(BENCH_CONFIG, NODE_COUNTS), rounds=1, iterations=1
    )
    print_sweep(energy)
    print_sweep(delivery)

    # FR trio delivers ≈ fully at every N.
    for algo in ("FR-EEDCB", "FR-GREED", "FR-RAND"):
        for v in delivery.series[algo]:
            if not np.isnan(v):
                assert v > 0.93, (algo, delivery.series[algo])

    # Static trio loses a sizeable share of nodes under fading.
    for algo in ("EEDCB", "GREED", "RAND"):
        vals = [v for v in delivery.series[algo] if not np.isnan(v)]
        assert vals and np.mean(vals) < 0.9, (algo, vals)

    # Static trio delivery worsens (or at best stagnates) as N grows.
    eedcb = [v for v in delivery.series["EEDCB"] if not np.isnan(v)]
    assert eedcb[-1] <= eedcb[0] + 0.05

    # Energy: fading-aware costs more than the matching static algorithm.
    for fr, plain in (("FR-EEDCB", "EEDCB"), ("FR-GREED", "GREED"), ("FR-RAND", "RAND")):
        fr_mean = np.nanmean(energy.series[fr])
        plain_mean = np.nanmean(energy.series[plain])
        assert fr_mean > plain_mean

    # Within each family the optimizer is cheapest on average.
    assert np.nanmean(energy.series["EEDCB"]) <= np.nanmean(energy.series["GREED"])
    assert np.nanmean(energy.series["FR-EEDCB"]) <= np.nanmean(energy.series["FR-GREED"])

"""Fig. 7 — energy consumption and average node degree over time.

Every 500 s (coarsened to 1000 s here) a broadcast window opens; the bench
checks the anti-correlation the paper highlights: as the trace's warm-up
ramp raises the average degree, broadcast energy falls, and both flatten
after the ramp.
"""

import numpy as np
import pytest

from repro.experiments import print_sweep, run_fig7

from .conftest import BENCH_CONFIG

WINDOW_STARTS = tuple(float(t) for t in range(5000, 15001, 1000))


def _check(result):
    degrees = np.array(result.series["avg degree"], dtype=float)
    # the ramp: degree at the start of the window range well below the
    # post-ramp plateau
    assert degrees[0] < 0.8 * np.mean(degrees[4:])
    # energy anti-correlates with the ramp: windows opening during the ramp
    # (the first 3) must on average cost more than post-ramp windows, for a
    # majority of the algorithms (per-series noise at bench scale is large).
    algos = [name for name in result.series if name != "avg degree"]
    drops = 0
    for algo in algos:
        energy = np.array(result.series[algo], dtype=float)
        ramp = np.nanmean(energy[:3])
        plateau = np.nanmean(energy[4:])
        if ramp > plateau:
            drops += 1
    assert drops >= 2, f"energy did not fall past the ramp for {algos}"


@pytest.mark.benchmark(group="fig7")
def test_fig7_static(benchmark):
    result = benchmark.pedantic(
        run_fig7, args=("static", BENCH_CONFIG, WINDOW_STARTS), rounds=1, iterations=1
    )
    print_sweep(result)
    _check(result)


@pytest.mark.benchmark(group="fig7")
def test_fig7_fading(benchmark):
    result = benchmark.pedantic(
        run_fig7, args=("rayleigh", BENCH_CONFIG, WINDOW_STARTS), rounds=1, iterations=1
    )
    print_sweep(result)
    _check(result)

#!/usr/bin/env python
"""Benchmark regression gate — thin wrapper over ``repro bench``.

Run from the repo root (the src/ layout needs the path hint)::

    PYTHONPATH=src python benchmarks/regress.py [--quick] [--tolerance X]

Times the tier-1 pipeline operations, writes ``BENCH_<date>.json``, and
exits nonzero when any tier-1 op's p50 wall time or deterministic work
counter regresses past the tolerance versus :file:`benchmarks/baseline.json`
(refresh it with ``--write-baseline`` after intentional changes).  Unlike
bare ``repro bench``, the gate always runs strict: a tier-1 op present in
the baseline but missing from the run fails instead of being skipped.  See
:mod:`repro.obs.bench` for the suite's contents.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--strict-ops" not in argv:
        argv.append("--strict-ops")
    sys.exit(main(["bench", *argv]))

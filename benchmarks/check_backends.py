#!/usr/bin/env python
"""Cross-check the compact (CSR), networkx, and numpy pipeline variants.

Runs the benchmark instance through the nx backend, the stdlib compact
backend, and the numpy compute kernels, and fails (exit 1) on any
divergence: auxiliary graph size, Steiner work counters, tree cost, or the
final schedules themselves — which must be *identical*, not merely equal in
cost (every variant mirrors the networkx build's node/edge ordering, so the
greedy solver's tie-breaks coincide).

Run from the repo root::

    PYTHONPATH=src python benchmarks/check_backends.py [--nodes N] [--delay T]

CI runs this next to the bench gate so a variant drift is caught even when
each variant is individually fast and individually feasible.
"""

import argparse
import sys

from repro.algorithms import make_scheduler
from repro.obs.bench import _build_instance

#: label → make_scheduler kwargs for each pipeline variant
VARIANTS = {
    "nx": {"backend": "nx"},
    "compact": {"compute": "python"},
    "numpy": {"compute": "numpy"},
}


def check(name, tveg, source, delay):
    """Compare one scheduler across variants; return divergence messages."""
    problems = []
    results = {
        label: make_scheduler(name, **kwargs).run(tveg, source, delay)
        for label, kwargs in VARIANTS.items()
    }
    ref = results["nx"]
    for label in ("compact", "numpy"):
        cur = results[label]
        for key in ("aux_nodes", "aux_edges", "dts_points", "dcs_levels",
                    "steiner_expansions", "tree_cost"):
            if ref.info.get(key) != cur.info.get(key):
                problems.append(
                    f"{name}: info[{key!r}] diverges — "
                    f"nx={ref.info.get(key)!r} {label}={cur.info.get(key)!r}"
                )
        if ref.schedule.transmissions != cur.schedule.transmissions:
            problems.append(
                f"{name}: schedules diverge — nx has "
                f"{ref.schedule.num_transmissions} transmissions "
                f"(cost {ref.schedule.total_cost!r}), {label} has "
                f"{cur.schedule.num_transmissions} "
                f"(cost {cur.schedule.total_cost!r})"
            )
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=12)
    parser.add_argument("--delay", type=float, default=2000.0)
    parser.add_argument("--seed", type=int, default=99)
    args = parser.parse_args(argv)

    static, fading, source, _trace = _build_instance(
        args.nodes, args.delay, args.seed
    )
    problems = []
    problems += check("eedcb", static, source, args.delay)
    problems += check("fr-eedcb", fading, source, args.delay)
    if problems:
        for p in problems:
            print(f"BACKEND DIVERGENCE: {p}", file=sys.stderr)
        return 1
    print("# backends agree: eedcb and fr-eedcb schedules identical under "
          "nx, compact, and numpy")
    return 0


if __name__ == "__main__":
    sys.exit(main())

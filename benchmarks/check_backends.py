#!/usr/bin/env python
"""Cross-check the compact (CSR) and networkx auxiliary-graph backends.

Runs the benchmark instance through both backends and fails (exit 1) on any
divergence: auxiliary graph size, Steiner work counters, tree cost, or the
final schedules themselves — which must be *identical*, not merely equal in
cost (the CSR build mirrors the networkx build's node/edge ordering, so the
greedy solver's tie-breaks coincide).

Run from the repo root::

    PYTHONPATH=src python benchmarks/check_backends.py [--nodes N] [--delay T]

CI runs this next to the bench gate so a backend drift is caught even when
both backends are individually fast and individually feasible.
"""

import argparse
import sys

from repro.algorithms import make_scheduler
from repro.obs.bench import _build_instance


def check(name, tveg, source, delay):
    """Compare one scheduler across backends; return divergence messages."""
    problems = []
    results = {
        b: make_scheduler(name, backend=b).run(tveg, source, delay)
        for b in ("nx", "compact")
    }
    nx_r, c_r = results["nx"], results["compact"]
    for key in ("aux_nodes", "aux_edges", "dts_points", "dcs_levels",
                "steiner_expansions", "tree_cost"):
        if nx_r.info.get(key) != c_r.info.get(key):
            problems.append(
                f"{name}: info[{key!r}] diverges — "
                f"nx={nx_r.info.get(key)!r} compact={c_r.info.get(key)!r}"
            )
    if nx_r.schedule.transmissions != c_r.schedule.transmissions:
        problems.append(
            f"{name}: schedules diverge — nx has "
            f"{nx_r.schedule.num_transmissions} transmissions "
            f"(cost {nx_r.schedule.total_cost!r}), compact has "
            f"{c_r.schedule.num_transmissions} "
            f"(cost {c_r.schedule.total_cost!r})"
        )
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=12)
    parser.add_argument("--delay", type=float, default=2000.0)
    parser.add_argument("--seed", type=int, default=99)
    args = parser.parse_args(argv)

    static, fading, source = _build_instance(args.nodes, args.delay, args.seed)
    problems = []
    problems += check("eedcb", static, source, args.delay)
    problems += check("fr-eedcb", fading, source, args.delay)
    if problems:
        for p in problems:
            print(f"BACKEND DIVERGENCE: {p}", file=sys.stderr)
        return 1
    print("# backends agree: eedcb and fr-eedcb schedules identical under "
          "nx and compact")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmarks of the Section VIII future-work extensions.

* **Contact uncertainty** — feasibility rate and cost escalation as contact
  availability drops (non-deterministic TVGs).
* **Interference** — delivery impact of the protocol-model collision option
  on the schedules the paper's algorithms emit (EEDCB's lean tree has few
  simultaneous same-neighborhood transmissions; flooding baselines have
  more).
"""

import numpy as np
import pytest

from repro.algorithms import make_scheduler
from repro.errors import InfeasibleError
from repro.sim import run_trials
from repro.temporal import ProbabilisticTVG, schedule_robustness
from repro.temporal.reachability import broadcast_feasible_sources
from repro.traces import HaggleLikeConfig, haggle_like_trace
from repro.tveg import tveg_from_trace


@pytest.mark.benchmark(group="extensions")
def test_uncertainty_robustness(benchmark):
    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=15), seed=13)
    window = trace.restrict_window(9000.0, 11000.0).shift(-9000.0)

    def run():
        out = {}
        for availability in (1.0, 0.6, 0.3):
            ptvg = ProbabilisticTVG.from_trace(window, availability=availability)
            report = schedule_robustness(
                ptvg, 0, 2000.0, realizations=15, seed=42
            )
            out[availability] = report
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nUncertainty ablation:")
    for availability, report in reports.items():
        print(
            f"  availability {availability:.1f}: rate "
            f"{report.feasibility_rate:.2f}, mean cost {report.mean_cost:.3g}"
        )
    # certain contacts must always be schedulable; rate never increases as
    # availability drops, and surviving plans get more expensive
    assert reports[1.0].feasibility_rate == 1.0
    assert reports[0.3].feasibility_rate <= reports[1.0].feasibility_rate
    if reports[0.3].costs:
        assert reports[0.3].mean_cost >= reports[1.0].mean_cost


@pytest.mark.benchmark(group="extensions")
def test_interference_delivery_impact(benchmark):
    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=15), seed=29)
    window = trace.restrict_window(9000.0, 11000.0).shift(-9000.0)
    fading = tveg_from_trace(window, "rayleigh", seed=6)
    sources = sorted(broadcast_feasible_sources(fading.tvg, 0.0, 2000.0))
    assert sources
    source = sources[0]

    def run():
        out = {}
        for name in ("fr-eedcb", "fr-greed"):
            schedule = make_scheduler(name).schedule(fading, source, 2000.0)
            none = run_trials(fading, schedule, source, 120, seed=3)
            coll = run_trials(
                fading, schedule, source, 120, seed=3, interference="collision"
            )
            out[name] = (none.mean_delivery, coll.mean_delivery)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nInterference ablation (delivery none → collision):")
    for name, (none, coll) in results.items():
        print(f"  {name}: {none:.3f} → {coll:.3f}")
    for name, (none, coll) in results.items():
        assert coll <= none + 1e-9  # collisions never help
        assert none > 0.9           # the paper model delivers ≈ 1 − ε

"""Shared benchmark configuration.

Figure benchmarks regenerate the paper's series at reduced scale so the
whole suite finishes in minutes; run the ``repro.experiments.figN`` modules
directly (or with ``FULL_CONFIG``) for paper-scale sweeps.  Each figure
bench prints its ASCII table — running ``pytest benchmarks/
--benchmark-only -s`` reproduces the evaluation's numbers on screen.
"""

from __future__ import annotations

import math

from repro.experiments import ExperimentConfig

#: reduced-scale preset used by every figure bench
BENCH_CONFIG = ExperimentConfig(repetitions=3, trials=30, num_nodes=15)

#: delay grid (coarser than the paper's 500 s steps, same endpoints)
BENCH_DELAYS = (2000.0, 3000.0, 4000.0, 5000.0, 6000.0)


def finite(values):
    """The finite entries of a series (sampling may yield NaN points)."""
    return [v for v in values if not math.isnan(v)]


def assert_mostly_decreasing(values):
    """Trend check robust to heavy-tailed sampling noise: the least-squares
    slope must be negative AND the second half's mean must lie below the
    first half's (single endpoint outliers don't flip either statistic)."""
    import numpy as np

    vs = finite(values)
    assert len(vs) >= 2, "need at least two finite points"
    slope = np.polyfit(range(len(vs)), vs, 1)[0]
    assert slope < 0, f"upward trend (slope={slope:.3g}): {vs}"
    half = len(vs) // 2
    assert np.mean(vs[-half:]) < np.mean(vs[:half]), f"no net decrease: {vs}"

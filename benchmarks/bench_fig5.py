"""Fig. 5 — EEDCB vs GREED vs RAND (and FR-variants) energy ordering.

The paper's claim: EEDCB < GREED < RAND and FR-EEDCB < FR-GREED < FR-RAND.
The global optimizer must win at every delay; the greedy-vs-random gap is
noisier, so it is checked on the sweep average.
"""

import numpy as np
import pytest

from repro.experiments import print_sweep, run_fig5

from .conftest import BENCH_CONFIG, BENCH_DELAYS


def _check_ordering(result, best, mid, worst):
    b = np.nanmean(result.series[best])
    m = np.nanmean(result.series[mid])
    w = np.nanmean(result.series[worst])
    # the paper's headline: the DTS/Steiner scheduler dominates
    for i in range(len(result.x_values)):
        eb = result.series[best][i]
        for other in (mid, worst):
            eo = result.series[other][i]
            if not (np.isnan(eb) or np.isnan(eo)):
                assert eb <= eo * 1.001, (result.x_values[i], best, other)
    assert b < m and b < w
    assert m <= w * 1.15  # greedy ≲ random on average (noise-tolerant)


@pytest.mark.benchmark(group="fig5")
def test_fig5_static(benchmark):
    result = benchmark.pedantic(
        run_fig5, args=("static", BENCH_CONFIG, BENCH_DELAYS), rounds=1, iterations=1
    )
    print_sweep(result)
    _check_ordering(result, "EEDCB", "GREED", "RAND")


@pytest.mark.benchmark(group="fig5")
def test_fig5_fading(benchmark):
    result = benchmark.pedantic(
        run_fig5, args=("rayleigh", BENCH_CONFIG, BENCH_DELAYS), rounds=1, iterations=1
    )
    print_sweep(result)
    _check_ordering(result, "FR-EEDCB", "FR-GREED", "FR-RAND")

"""Micro-benchmarks of the pipeline stages.

These time the individual substrates on a paper-scale instance (N = 20,
2000 s window) so regressions in any stage — interval algebra, DTS
construction, auxiliary-graph build, Steiner solve, NLP allocation,
Monte-Carlo simulation — show up in isolation.
"""

import numpy as np
import pytest

from repro.allocation import build_allocation_problem, solve_allocation
from repro.auxgraph import build_aux_graph
from repro.core.intervals import IntervalSet
from repro.dts import build_dts
from repro.algorithms import make_scheduler
from repro.schedule import uninformed_probabilities
from repro.sim import run_trials
from repro.steiner import solve_memt
from repro.temporal import earliest_arrivals
from repro.traces import HaggleLikeConfig, haggle_like_trace
from repro.tveg import tveg_from_trace


@pytest.fixture(scope="module")
def instance():
    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=20), seed=99)
    window = trace.restrict_window(9000.0, 11000.0).shift(-9000.0)
    static = tveg_from_trace(window, "static", seed=5)
    fading = tveg_from_trace(window, "rayleigh", seed=5)
    from repro.temporal.reachability import broadcast_feasible_sources

    sources = broadcast_feasible_sources(static.tvg, 0.0, 2000.0)
    assert sources, "fixture window must be broadcast-feasible"
    return static, fading, sorted(sources)[0]


@pytest.mark.benchmark(group="micro")
def test_interval_algebra(benchmark):
    rng = np.random.default_rng(0)
    sets = []
    for _ in range(50):
        starts = np.sort(rng.uniform(0, 1e4, 40))
        sets.append(IntervalSet(zip(starts, starts + rng.uniform(1, 50, 40))))

    def work():
        acc = sets[0]
        for s in sets[1:]:
            acc = acc | s
        out = 0
        for s in sets:
            out += len(acc & s)
            acc.complement(0.0, 1e4)
        return out

    benchmark(work)


@pytest.mark.benchmark(group="micro")
def test_temporal_dijkstra(benchmark, instance):
    static, _, source = instance
    benchmark(earliest_arrivals, static.tvg, source)


@pytest.mark.benchmark(group="micro")
def test_dts_build(benchmark, instance):
    static, _, _ = instance
    dts = benchmark(build_dts, static.tvg, 2000.0)
    assert dts.total_points() > 0


@pytest.mark.benchmark(group="micro")
def test_aux_graph_build(benchmark, instance):
    static, _, source = instance
    aux = benchmark(build_aux_graph, static, source, 2000.0)
    assert aux.num_nodes > 0


@pytest.mark.benchmark(group="micro")
def test_steiner_solve(benchmark, instance):
    static, _, source = instance
    aux = build_aux_graph(static, source, 2000.0)
    edges = benchmark(solve_memt, aux.graph, aux.root, aux.terminals)
    assert edges


@pytest.mark.benchmark(group="micro")
def test_nlp_allocation(benchmark, instance):
    _, fading, source = instance
    backbone = make_scheduler("eedcb").schedule(fading, source, 2000.0)
    problem = build_allocation_problem(fading, backbone, source)
    res = benchmark(solve_allocation, problem)
    assert problem.is_feasible(res.costs)


@pytest.mark.benchmark(group="micro")
def test_probability_engine(benchmark, instance):
    _, fading, source = instance
    sched = make_scheduler("fr-eedcb").schedule(fading, source, 2000.0)
    probs = benchmark(uninformed_probabilities, fading, sched, 2000.0, source)
    assert len(probs) == 20


@pytest.mark.benchmark(group="micro")
def test_monte_carlo(benchmark, instance):
    _, fading, source = instance
    sched = make_scheduler("fr-eedcb").schedule(fading, source, 2000.0)
    summary = benchmark.pedantic(
        run_trials,
        args=(fading, sched, source),
        kwargs={"num_trials": 100, "seed": 0},
        rounds=2,
        iterations=1,
    )
    assert summary.mean_delivery > 0.9

"""Online protocols vs the offline optimum (the clairvoyance gap).

Not a paper figure — a positioning benchmark: the paper's offline EEDCB is
only meaningful against what a deployed (online) network could do, so this
bench pins the qualitative relations: the offline optimum spends the least
energy; epidemic attains the foremost-journey latency envelope; token
budgets trade delivery/latency for energy.
"""

import math

import pytest

from repro.algorithms import make_scheduler
from repro.errors import InfeasibleError
from repro.online import Epidemic, Gossip, SprayAndWait, run_online_trials
from repro.temporal.reachability import broadcast_feasible_sources
from repro.traces import HaggleLikeConfig, haggle_like_trace
from repro.tveg import tveg_from_trace


@pytest.mark.benchmark(group="online")
def test_online_vs_offline(benchmark):
    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=15), seed=17)
    window = trace.restrict_window(10000.0, 12000.0).shift(-10000.0)
    tveg = tveg_from_trace(window, "static", seed=2)
    sources = sorted(broadcast_feasible_sources(tveg.tvg, 0.0, 2000.0))
    assert sources
    source = sources[0]

    def run():
        offline = make_scheduler("eedcb").schedule(tveg, source, 2000.0)
        online = {
            "epidemic": run_online_trials(
                tveg, Epidemic(), source, 2000.0, num_trials=30, seed=3
            ),
            "gossip": run_online_trials(
                tveg, Gossip(0.5), source, 2000.0, num_trials=30, seed=3
            ),
            "spray4": run_online_trials(
                tveg, SprayAndWait(4), source, 2000.0, num_trials=30, seed=3
            ),
        }
        return offline, online

    offline, online = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nOnline vs offline (energy, delivery):")
    print(f"  offline EEDCB : {offline.total_cost:.3g}, 1.000")
    for name, s in online.items():
        print(f"  {name:>13} : {s.mean_energy:.3g}, {s.mean_delivery:.3f}")

    # clairvoyance never loses on energy
    for name, s in online.items():
        assert offline.total_cost <= s.mean_energy + 1e-18, name
    # epidemic delivers at least as much as the throttled protocols
    assert online["epidemic"].mean_delivery >= online["spray4"].mean_delivery - 1e-9
    assert online["epidemic"].mean_delivery >= online["gossip"].mean_delivery - 1e-9
    # and at no worse latency than the token-starved spray
    if not math.isnan(online["spray4"].mean_latency):
        assert online["epidemic"].mean_latency <= online["spray4"].mean_latency + 1e-9
